"""Smoke + shape tests for the per-table/figure experiment definitions.

Every experiment is exercised at a reduced scale (small dataset analogs,
restricted parameter grids) so the suite stays fast; the full-size runs live
in ``benchmarks/``.
"""

from __future__ import annotations

import math

import pytest

from repro.eval.experiments import EXPERIMENTS
from repro.eval.experiments.figure5 import run_figure5
from repro.eval.experiments.figure6 import run_figure6
from repro.eval.experiments.figure7 import run_figure7
from repro.eval.experiments.figure8 import run_figure8
from repro.eval.experiments.figure9 import run_figure9
from repro.eval.experiments.figure10 import run_figure10
from repro.eval.experiments.figure11 import run_figure11
from repro.eval.experiments.table5 import run_table5
from repro.eval.experiments.table6 import run_table6
from repro.baselines.random_walk_ppr import RandomWalkConfig

SCALE = 0.25
SEED = 13


class TestRegistry:
    def test_every_table_and_figure_has_an_entry(self):
        paper_experiments = {
            "table5", "figure5", "figure6", "figure7", "figure8",
            "figure9", "figure10", "figure11", "table6",
        }
        ablations = {
            "ablation-alpha", "ablation-content", "ablation-engines",
            "ablation-khop", "ablation-partitioning",
        }
        assert set(EXPERIMENTS) == paper_experiments | ablations


class TestTable5:
    @pytest.fixture(scope="class")
    def result(self):
        return run_table5(
            scale=SCALE,
            seed=SEED,
            num_machines=2,
            datasets=("gowalla",),
            scores=("linearSum", "counter"),
            blocks=((math.inf, math.inf), (20, 20)),
        )

    def test_all_cells_present(self, result):
        assert "gowalla" in result.baseline
        assert len(result.snaple) == 4

    def test_snaple_recall_gain_over_baseline(self, result):
        gain = result.recall_gain("gowalla", "linearSum", math.inf, math.inf)
        assert gain > 1.0

    def test_sampling_gives_speedup(self, result):
        sampled = result.speedup("gowalla", "linearSum", 20, 20)
        unsampled = result.speedup("gowalla", "linearSum", math.inf, math.inf)
        assert sampled >= unsampled > 1.0

    def test_render_contains_baseline_and_blocks(self, result):
        text = result.render()
        assert "BASELINE" in text
        assert "klocal=20" in text
        assert "linearSum" in text


class TestFigure5:
    @pytest.fixture(scope="class")
    def result(self):
        return run_figure5(
            scale=SCALE,
            seed=SEED,
            k_locals=(40,),
            datasets=("gowalla", "livejournal"),
            enforce_memory=False,
        )

    def test_panels_for_each_machine_type(self, result):
        assert ("type-I", 40) in result.panels
        assert ("type-II", 40) in result.panels

    def test_time_grows_with_graph_size(self, result):
        for report in result.panels.values():
            for series in report.series.values():
                xs = series.xs()
                ys = series.ys()
                ordered = [y for _x, y in sorted(zip(xs, ys))]
                assert ordered[0] < ordered[-1]

    def test_more_cores_are_faster(self, result):
        panel = result.panel("type-I", 40)
        by_label = panel.as_dict()
        small_cluster = dict(by_label["64 cores"])
        large_cluster = dict(by_label["256 cores"])
        for edges, seconds in small_cluster.items():
            assert large_cluster[edges] <= seconds

    def test_render_smoke(self, result):
        assert "Figure 5" in result.render()


class TestFigure6:
    @pytest.fixture(scope="class")
    def result(self):
        return run_figure6(
            scale=SCALE,
            seed=SEED,
            k_local=20,
            datasets=("livejournal",),
            thresholds=(10, 40, 100),
        )

    def test_cdf_and_coverage_recorded(self, result):
        assert "livejournal" in result.cdfs
        assert result.coverage[("livejournal", 100)] >= result.coverage[("livejournal", 10)]

    def test_improvement_series_starts_at_zero(self, result):
        points = dict(result.improvement.series["livejournal"].points)
        assert points[10.0] == pytest.approx(0.0)

    def test_higher_threshold_does_not_hurt_recall_much(self, result):
        recall_small = result.recall[("livejournal", 10)]
        recall_large = result.recall[("livejournal", 100)]
        assert recall_large >= recall_small - 0.02

    def test_render_smoke(self, result):
        text = result.render()
        assert "Figure 6" in text
        assert "livejournal" in text


class TestFigure7:
    @pytest.fixture(scope="class")
    def result(self):
        return run_figure7(
            dataset="livejournal",
            scale=SCALE,
            seed=SEED,
            scores=("linearSum",),
            k_locals=(5, 40),
            policies=("max", "min", "rnd"),
        )

    def test_three_policies_per_panel(self, result):
        assert set(result.panels["linearSum"].series) == {"Γmax", "Γmin", "Γrnd"}

    def test_max_policy_at_least_as_good_as_min_at_small_klocal(self, result):
        assert result.recall("linearSum", "max", 5) >= result.recall("linearSum", "min", 5)

    def test_policies_converge_at_large_klocal(self, result):
        spread = abs(
            result.recall("linearSum", "max", 40) - result.recall("linearSum", "min", 40)
        )
        small_spread = abs(
            result.recall("linearSum", "max", 5) - result.recall("linearSum", "min", 5)
        )
        assert spread <= small_spread + 0.02

    def test_render_smoke(self, result):
        assert "Figure 7" in result.render()


class TestFigure8:
    @pytest.fixture(scope="class")
    def result(self):
        return run_figure8(
            scale=SCALE,
            seed=SEED,
            datasets=("livejournal",),
            k_locals=(5, 40),
            families={"Sum": ("linearSum",), "Mean": ("linearMean",)},
        )

    def test_points_per_configuration(self, result):
        assert ("livejournal", "linearSum", 5) in result.points
        assert ("livejournal", "linearMean", 40) in result.points

    def test_sum_recall_improves_with_klocal(self, result):
        # At the reduced test scale the trend can be noisy; the full-scale
        # benchmark checks the strict monotone shape.
        series = dict(result.recall_series("livejournal", "linearSum"))
        assert series[40] >= series[5] - 0.02

    def test_render_smoke(self, result):
        assert "aggregator" in result.render()


class TestFigure9And10:
    def test_recall_increases_with_k(self):
        result = run_figure9(
            scale=SCALE, seed=SEED, datasets=("livejournal",),
            ks=(5, 20), scores=("linearSum",), k_local=20,
        )
        assert result.recall("livejournal", "linearSum", 20) >= result.recall(
            "livejournal", "linearSum", 5
        )

    def test_recall_decreases_with_removed_edges(self):
        result = run_figure10(
            scale=SCALE, seed=SEED, datasets=("livejournal",),
            removals=(1, 4), scores=("linearSum",), k_local=20,
        )
        assert result.recall("livejournal", "linearSum", 4) <= result.recall(
            "livejournal", "linearSum", 1
        ) + 0.02


class TestFigure11AndTable6:
    @pytest.fixture(scope="class")
    def figure11(self):
        return run_figure11(
            scale=SCALE, seed=SEED, datasets=("livejournal",),
            walks=(10, 100), depths=(3, 5),
        )

    def test_runs_recorded_per_configuration(self, figure11):
        assert ("livejournal", 10, 3) in figure11.runs
        assert ("livejournal", 100, 5) in figure11.runs

    def test_more_walks_improve_recall(self, figure11):
        few = figure11.runs[("livejournal", 10, 3)]
        many = figure11.runs[("livejournal", 100, 3)]
        assert many.recall >= few.recall

    def test_best_run_selection(self, figure11):
        best = figure11.best_run("livejournal")
        assert best.recall == max(run.recall for run in figure11.runs.values())

    def test_best_run_unknown_dataset(self, figure11):
        with pytest.raises(KeyError):
            figure11.best_run("orkut")

    def test_table6_snaple_beats_random_walks(self):
        result = run_table6(
            scale=SCALE, seed=SEED, datasets=("livejournal",), k_local=20,
            baseline_config=RandomWalkConfig(num_walks=100, depth=3),
            distributed_machines=8,
        )
        # The paper's single-machine claim: SNAPLE matches or beats the
        # random-walk PPR baseline in recall while being faster.
        assert result.snaple["livejournal"].recall >= (
            0.8 * result.cassovary["livejournal"].recall
        )
        assert result.speedup("livejournal") > 1.0
        # The distributed run must complete; its full-scale speedup shape is
        # checked by the Table 6 benchmark (small graphs do not amortize the
        # per-step network/barrier overhead of distribution).
        assert not result.distributed["livejournal"].failed
        assert result.distributed_speedup("livejournal") > 0.3
        assert "Table 6" in result.render()
