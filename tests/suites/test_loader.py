"""Suite-file parsing: merge order, schema validation, YAML/TOML parity."""

from __future__ import annotations

import textwrap

import pytest

from repro.errors import ConfigurationError
from repro.suites import load_suite, parse_suite
from repro.suites.schema import deep_merge


def _minimal_suite(**experiment) -> dict:
    body = {"dataset": "gowalla"}
    body.update(experiment)
    return {
        "packs": [{
            "name": "pack",
            "experiments": [dict(body, name="exp")],
        }],
    }


class TestDeepMerge:
    def test_scalars_override(self):
        assert deep_merge(1, 2) == 2
        assert deep_merge({"a": 1}, 2) == 2

    def test_mappings_merge_recursively(self):
        merged = deep_merge(
            {"config": {"score": "linearSum", "k_local": 80}, "seed": 1},
            {"config": {"k_local": 20}},
        )
        assert merged == {
            "config": {"score": "linearSum", "k_local": 20},
            "seed": 1,
        }


class TestMergeOrder:
    def test_suite_then_pack_then_experiment(self):
        data = {
            "defaults": {
                "scale": 0.5,
                "seed": 7,
                "config": {"score": "linearSum", "k_local": 80},
            },
            "packs": [{
                "name": "pack",
                "defaults": {
                    "seed": 8,
                    "config": {"k_local": 40},
                    "dataset": "gowalla",
                },
                "experiments": [
                    {"name": "base"},
                    {"name": "override",
                     "seed": 9,
                     "config": {"truncation_threshold": 10}},
                ],
            }],
        }
        suite = parse_suite(data, default_name="merge")
        base, override = suite.experiments
        assert base.scale == 0.5
        assert base.seed == 8  # pack beats suite
        assert base.config == {"score": "linearSum", "k_local": 40}
        assert override.seed == 9  # experiment beats pack
        assert override.config == {
            "score": "linearSum",
            "k_local": 40,
            "truncation_threshold": 10,
        }

    def test_experiment_dataset_string_replaces_default_mapping(self):
        data = {
            "defaults": {
                "dataset": {"source": "powerlaw_cluster",
                            "options": {"num_vertices": 100}},
            },
            "packs": [{
                "name": "pack",
                "experiments": [{"name": "exp", "dataset": "orkut"}],
            }],
        }
        suite = parse_suite(data, default_name="replace")
        (experiment,) = suite.experiments
        assert experiment.dataset.source == "orkut"
        assert experiment.dataset.options == {}

    def test_defaults_fill_missing_sections(self):
        data = _minimal_suite()
        suite = parse_suite(data, default_name="defaults")
        (experiment,) = suite.experiments
        assert experiment.workload == "batch"
        assert experiment.backend == "local"
        assert experiment.scale == 1.0
        assert experiment.seed == 42
        assert experiment.qualified_name == "pack/exp"


class TestSchemaErrors:
    def test_unknown_experiment_key_names_the_path(self):
        data = _minimal_suite(thrust=11)
        with pytest.raises(ConfigurationError,
                           match=r"packs\[0\]\.experiments\[0\]\.thrust"):
            parse_suite(data, default_name="bad")

    def test_unknown_config_key_names_the_path(self):
        data = _minimal_suite(config={"k_locall": 80})
        with pytest.raises(
            ConfigurationError,
            match=r"packs\[0\]\.experiments\[0\]\.config\.k_locall",
        ):
            parse_suite(data, default_name="bad")

    def test_bad_defaults_key_names_the_defaults_path(self):
        data = _minimal_suite()
        data["defaults"] = {"config": {"alpha": "high"}}
        with pytest.raises(ConfigurationError, match=r"defaults\.config\.alpha"):
            parse_suite(data, default_name="bad")

    def test_missing_dataset_is_reported(self):
        data = {
            "packs": [{"name": "pack",
                       "experiments": [{"name": "exp"}]}],
        }
        with pytest.raises(ConfigurationError,
                           match=r"experiments\[0\]\.dataset"):
            parse_suite(data, default_name="bad")

    def test_dataset_mapping_requires_source(self):
        data = _minimal_suite(dataset={"options": {"num_vertices": 10}})
        with pytest.raises(ConfigurationError, match=r"dataset\.source"):
            parse_suite(data, default_name="bad")

    def test_duplicate_experiment_names_rejected(self):
        data = {
            "packs": [{
                "name": "pack",
                "experiments": [
                    {"name": "exp", "dataset": "gowalla"},
                    {"name": "exp", "dataset": "orkut"},
                ],
            }],
        }
        with pytest.raises(ConfigurationError, match="duplicate experiment"):
            parse_suite(data, default_name="bad")

    def test_duplicate_pack_names_rejected(self):
        data = {
            "packs": [
                {"name": "pack",
                 "experiments": [{"name": "a", "dataset": "gowalla"}]},
                {"name": "pack",
                 "experiments": [{"name": "b", "dataset": "gowalla"}]},
            ],
        }
        with pytest.raises(ConfigurationError, match="duplicate pack"):
            parse_suite(data, default_name="bad")

    def test_non_positive_scale_rejected(self):
        data = _minimal_suite(scale=0)
        with pytest.raises(ConfigurationError, match=r"scale.*positive"):
            parse_suite(data, default_name="bad")

    def test_bool_is_not_an_integer_seed(self):
        data = _minimal_suite(seed=True)
        with pytest.raises(ConfigurationError, match=r"seed"):
            parse_suite(data, default_name="bad")

    def test_empty_packs_rejected(self):
        with pytest.raises(ConfigurationError, match="packs"):
            parse_suite({"packs": []}, default_name="bad")

    def test_top_level_must_be_mapping(self):
        with pytest.raises(ConfigurationError, match="mapping"):
            parse_suite(["not", "a", "suite"], default_name="bad")


class TestSelection:
    def _suite(self):
        data = {
            "packs": [
                {"name": "first",
                 "experiments": [{"name": "a", "dataset": "gowalla"},
                                 {"name": "b", "dataset": "gowalla"}]},
                {"name": "second",
                 "experiments": [{"name": "a", "dataset": "orkut"}]},
            ],
        }
        return parse_suite(data, default_name="select")

    def test_select_by_pack(self):
        suite = self._suite()
        selected = suite.select(pack="second")
        assert [e.qualified_name for e in selected] == ["second/a"]

    def test_select_by_experiment(self):
        suite = self._suite()
        selected = suite.select(pack="first", experiment="b")
        assert [e.qualified_name for e in selected] == ["first/b"]

    def test_unknown_pack_lists_available(self):
        with pytest.raises(ConfigurationError, match="first, second"):
            self._suite().select(pack="third")

    def test_unknown_experiment_raises(self):
        with pytest.raises(ConfigurationError, match="no experiment"):
            self._suite().select(experiment="zzz")


class TestFileLoading:
    def test_toml_round_trip(self, tmp_path):
        path = tmp_path / "suite.toml"
        path.write_text(textwrap.dedent("""\
            [suite]
            name = "toml-suite"

            [defaults]
            seed = 3

            [[packs]]
            name = "pack"

            [[packs.experiments]]
            name = "exp"
            dataset = "gowalla"
        """), encoding="utf-8")
        suite = load_suite(path)
        assert suite.name == "toml-suite"
        assert suite.experiments[0].seed == 3

    def test_yaml_round_trip(self, tmp_path):
        pytest.importorskip("yaml")
        path = tmp_path / "suite.yaml"
        path.write_text(textwrap.dedent("""\
            suite:
              name: yaml-suite
            packs:
              - name: pack
                experiments:
                  - name: exp
                    dataset: gowalla
        """), encoding="utf-8")
        suite = load_suite(path)
        assert suite.name == "yaml-suite"
        assert suite.experiments[0].dataset.source == "gowalla"

    def test_suite_name_defaults_to_file_stem(self, tmp_path):
        path = tmp_path / "stem-name.toml"
        path.write_text(textwrap.dedent("""\
            [[packs]]
            name = "pack"

            [[packs.experiments]]
            name = "exp"
            dataset = "gowalla"
        """), encoding="utf-8")
        assert load_suite(path).name == "stem-name"

    def test_malformed_toml_reports_the_file(self, tmp_path):
        path = tmp_path / "broken.toml"
        path.write_text("[packs\n", encoding="utf-8")
        with pytest.raises(ConfigurationError, match="invalid TOML"):
            load_suite(path)

    def test_malformed_yaml_reports_the_file(self, tmp_path):
        pytest.importorskip("yaml")
        path = tmp_path / "broken.yaml"
        path.write_text("packs: [unclosed\n", encoding="utf-8")
        with pytest.raises(ConfigurationError, match="invalid YAML"):
            load_suite(path)

    def test_schema_error_includes_file_and_path(self, tmp_path):
        path = tmp_path / "bad.toml"
        path.write_text(textwrap.dedent("""\
            [[packs]]
            name = "pack"

            [[packs.experiments]]
            name = "exp"
            dataset = "gowalla"

            [packs.experiments.config]
            k_locall = 80
        """), encoding="utf-8")
        with pytest.raises(
            ConfigurationError,
            match=r"bad\.toml.*packs\[0\]\.experiments\[0\]\.config\.k_locall",
        ):
            load_suite(path)

    def test_missing_file_raises_configuration_error(self, tmp_path):
        with pytest.raises(ConfigurationError, match="cannot read"):
            load_suite(tmp_path / "nope.toml")

    def test_unknown_extension_rejected(self, tmp_path):
        path = tmp_path / "suite.json"
        path.write_text("{}", encoding="utf-8")
        with pytest.raises(ConfigurationError, match="extension"):
            load_suite(path)
