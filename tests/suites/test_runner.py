"""Suite execution: workloads, parity with bespoke experiments, reports."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.errors import ConfigurationError
from repro.suites import load_suite, parse_suite, run_suite

EXAMPLES = Path(__file__).resolve().parents[2] / "examples" / "suites"

_REPORT_KEYS = {
    "backend", "num_vertices", "num_predicted_edges", "wall_clock_seconds",
    "predictions", "extra",
}


def _assert_well_formed(payload: dict) -> None:
    """Every suite payload carries the standard RunReport JSON shape."""
    for key in ("suite", "pack", "experiment", "workload", "dataset",
                "backend", "scale", "seed", "report", "summary"):
        assert key in payload, f"missing payload key {key!r}"
    report = payload["report"]
    assert report is not None
    assert _REPORT_KEYS <= set(report)
    json.dumps(payload)  # must be JSON-serializable as-is


def _batch_suite(**experiment) -> dict:
    body = {"dataset": "gowalla", "scale": 0.05}
    body.update(experiment)
    return {
        "packs": [{
            "name": "pack",
            "experiments": [dict(body, name="exp")],
        }],
    }


class TestBatchWorkload:
    def test_named_analog_run_produces_quality_and_report(self):
        suite = parse_suite(
            _batch_suite(config={"score": "linearSum", "k_local": 40}),
            default_name="batch",
        )
        result = run_suite(suite)
        (payload,) = result.results
        _assert_well_formed(payload)
        assert payload["workload"] == "batch"
        assert payload["quality"] is not None
        assert 0.0 <= payload["quality"]["recall"] <= 1.0
        assert payload["report"]["backend"] == "local"

    def test_generator_source_needs_no_experiment_code(self):
        suite = parse_suite(_batch_suite(dataset={
            "source": "degree_skewed",
            "options": {"num_vertices": 200, "mean_degree": 6},
        }), default_name="generator")
        (payload,) = run_suite(suite).results
        _assert_well_formed(payload)
        assert payload["dataset"]["source"] == "degree_skewed"
        assert payload["quality"] is not None

    def test_protocol_overrides_reach_the_split(self):
        base = parse_suite(_batch_suite(), default_name="base")
        tweaked = parse_suite(
            _batch_suite(protocol={"removed_edges_per_vertex": 2}),
            default_name="tweaked",
        )
        removed_base = run_suite(base).results[0]["quality"]["num_removed"]
        removed_tweaked = run_suite(tweaked).results[0]["quality"]["num_removed"]
        assert removed_tweaked > removed_base

    def test_unknown_backend_raises_configuration_error(self):
        suite = parse_suite(_batch_suite(backend="spark"),
                            default_name="bad")
        with pytest.raises(ConfigurationError,
                           match="unknown execution backend"):
            run_suite(suite)

    def test_unknown_workload_option_raises_up_front(self):
        suite = parse_suite(
            _batch_suite(workload="temporal_replay",
                         options={"snapshotz": 3}),
            default_name="bad",
        )
        with pytest.raises(ConfigurationError, match="snapshotz"):
            run_suite(suite)


class TestFigure6Parity:
    def test_suite_recall_is_bit_identical_to_bespoke_figure6(self):
        from repro.eval.experiments.figure6 import run_figure6

        scale, thresholds = 0.05, (10, 40)
        bespoke = run_figure6(scale=scale, seed=42, datasets=("orkut",),
                              thresholds=thresholds)
        data = {
            "defaults": {
                "seed": 42,
                "scale": scale,
                "config": {"score": "linearSum", "k_local": 80},
            },
            "packs": [{
                "name": "orkut",
                "defaults": {"dataset": "orkut"},
                "experiments": [
                    {"name": f"thr-{threshold}",
                     "config": {"truncation_threshold": threshold}}
                    for threshold in thresholds
                ],
            }],
        }
        suite = parse_suite(data, default_name="parity")
        result = run_suite(suite)
        for payload, threshold in zip(result.results, thresholds):
            assert payload["quality"]["recall"] == (
                bespoke.recall[("orkut", threshold)]
            )


class TestTemporalReplayWorkload:
    def _suite(self, **options) -> dict:
        merged = {"snapshots": 3, "base_fraction": 0.7,
                  "queries_per_snapshot": 16}
        merged.update(options)
        return {
            "packs": [{
                "name": "replay",
                "experiments": [{
                    "name": "powerlaw",
                    "workload": "temporal_replay",
                    "dataset": {"source": "powerlaw_cluster",
                                "options": {"num_vertices": 120,
                                            "edges_per_vertex": 3,
                                            "triangle_probability": 0.4}},
                    "options": merged,
                }],
            }],
        }

    def test_replay_emits_snapshots_and_serving_report(self):
        suite = parse_suite(self._suite(), default_name="replay")
        (payload,) = run_suite(suite).results
        _assert_well_formed(payload)
        assert payload["report"]["backend"] == "serving"
        assert len(payload["snapshots"]) == 3
        streamed = sum(s["edges"] for s in payload["snapshots"])
        assert streamed == payload["graph"]["streamed_edges"]
        ingested = sum(s["ingested_edges"] for s in payload["snapshots"])
        assert ingested == streamed  # deduped stream: every edge lands
        assert payload["stats"]["edges_ingested"] == ingested

    def test_replay_is_deterministic_per_seed(self):
        suite = parse_suite(self._suite(), default_name="replay")
        first = run_suite(suite).results[0]
        second = run_suite(suite).results[0]
        assert first["snapshots"] == second["snapshots"]

    def test_bad_base_fraction_rejected(self):
        suite = parse_suite(self._suite(base_fraction=1.5),
                            default_name="bad")
        with pytest.raises(ConfigurationError, match="base_fraction"):
            run_suite(suite)


class TestRunSuitePlumbing:
    def test_out_dir_writes_one_json_per_experiment(self, tmp_path):
        suite = parse_suite(_batch_suite(), default_name="out")
        run_suite(suite, out_dir=tmp_path)
        written = sorted(tmp_path.glob("*.json"))
        assert [p.name for p in written] == ["pack__exp.json"]
        payload = json.loads(written[0].read_text(encoding="utf-8"))
        _assert_well_formed(payload)

    def test_selection_runs_only_the_requested_experiment(self):
        data = {
            "defaults": {"dataset": "gowalla", "scale": 0.05},
            "packs": [{
                "name": "pack",
                "experiments": [{"name": "a"}, {"name": "b"}],
            }],
        }
        suite = parse_suite(data, default_name="select")
        result = run_suite(suite, experiment="b")
        assert [p["experiment"] for p in result.results] == ["b"]

    def test_render_mentions_every_experiment(self):
        suite = parse_suite(_batch_suite(), default_name="render")
        rendered = run_suite(suite).render()
        assert "pack/exp" in rendered
        assert "recall=" in rendered


@pytest.mark.slow
class TestCheckedInSuites:
    """The example suite files in the repository load and run end-to-end."""

    @pytest.mark.parametrize("filename", [
        "temporal_replay.yaml", "bipartite.yaml", "adversarial.toml",
        "figure6.yaml",
    ])
    def test_example_suite_loads(self, filename):
        if filename.endswith((".yaml", ".yml")):
            pytest.importorskip("yaml")
        suite = load_suite(EXAMPLES / filename)
        assert suite.experiments

    def test_adversarial_suite_runs(self):
        suite = load_suite(EXAMPLES / "adversarial.toml")
        result = run_suite(suite, experiment="thr-10")
        (payload,) = result.results
        _assert_well_formed(payload)
        assert payload["dataset"]["source"] == "degree_skewed"

    def test_temporal_suite_runs(self):
        pytest.importorskip("yaml")
        suite = load_suite(EXAMPLES / "temporal_replay.yaml")
        result = run_suite(suite, experiment="social-small")
        (payload,) = result.results
        _assert_well_formed(payload)
        assert payload["report"]["backend"] == "serving"

    def test_bipartite_suite_runs(self):
        pytest.importorskip("yaml")
        suite = load_suite(EXAMPLES / "bipartite.yaml")
        result = run_suite(suite, experiment="linear-sum")
        (payload,) = result.results
        _assert_well_formed(payload)
        assert payload["quality"]["recall"] > 0.0
