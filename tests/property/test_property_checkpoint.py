"""Hypothesis properties of checkpointed crash recovery.

The property that makes fault tolerance trustworthy: **crashing at any
superstep never changes the answer**.  For random graphs, configurations,
execution kinds and crash points, a run that loses a worker mid-superstep
and recovers from its checkpoints produces bit-identical predictions,
candidate scores and deterministic accounting counters versus an
uninterrupted run — the per-vertex ``(seed, step, vertex)`` RNG streams make
the replayed supersteps exact.

Each example spins up real worker pools twice, so the graphs stay small and
the example counts low; the fixed-grid suite in
``tests/runtime/test_checkpoint_recovery.py`` covers the full
{gas, bsp} × {dict, columnar} × {1, 4 workers} matrix.
"""

from __future__ import annotations

import tempfile
import uuid
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.generators import powerlaw_cluster
from repro.runtime.checkpoint import FaultSpec
from repro.snaple.config import SnapleConfig
from repro.snaple.predictor import SnapleLinkPredictor

graphs = st.builds(
    powerlaw_cluster,
    st.integers(min_value=20, max_value=50),
    st.integers(min_value=2, max_value=4),
    st.floats(min_value=0.0, max_value=0.6),
    seed=st.integers(min_value=0, max_value=300),
)

configs = st.builds(
    SnapleConfig.paper_default,
    st.sampled_from(["linearSum", "counter"]),
    k=st.integers(min_value=1, max_value=4),
    k_local=st.sampled_from([4, 8]),
    truncation_threshold=st.sampled_from([4.0, 100.0]),
    seed=st.integers(min_value=0, max_value=50),
)


def one_shot_fault(scratch: Path, superstep: int, partition: int) -> FaultSpec:
    """A fresh token per example keeps every drawn fault one-shot."""
    token = scratch / f"token-{uuid.uuid4().hex}"
    return FaultSpec(superstep=superstep, partition=partition,
                     token_path=str(token))


class TestCrashAtAnySuperstep:
    @settings(max_examples=6, deadline=None)
    @given(graph=graphs, config=configs,
           kind=st.sampled_from(["gas", "bsp"]),
           crash_step=st.integers(min_value=0, max_value=3),
           partition=st.integers(min_value=0, max_value=1))
    def test_recovered_run_is_bit_identical(self, graph, config, kind,
                                            crash_step, partition):
        crash_step %= 3 if kind == "gas" else 4
        predictor = SnapleLinkPredictor(config)
        baseline = predictor.predict(graph, backend=kind, workers=2)
        with tempfile.TemporaryDirectory() as scratch:
            scratch = Path(scratch)
            fault = one_shot_fault(scratch, crash_step, partition)
            recovered = predictor.predict(
                graph, backend=kind, workers=2,
                checkpoint_dir=scratch / "ckpt", fault=fault,
            )
        assert recovered.extra["worker_restarts"] == 1.0
        assert recovered.predictions == baseline.predictions
        assert dict(recovered.scores) == dict(baseline.scores)
        assert recovered.supersteps == baseline.supersteps
        for expected, actual in zip(baseline.partition_reports,
                                    recovered.partition_reports):
            assert actual.gather_invocations == expected.gather_invocations
            assert actual.apply_invocations == expected.apply_invocations
            assert actual.shipped_bytes == expected.shipped_bytes

    @settings(max_examples=4, deadline=None)
    @given(graph=graphs, config=configs,
           crash_step=st.integers(min_value=0, max_value=2),
           cadence=st.integers(min_value=1, max_value=3))
    def test_resume_parity_independent_of_cadence(self, graph, config,
                                                  crash_step, cadence):
        """Any checkpoint cadence (including none due) recovers identically."""
        predictor = SnapleLinkPredictor(config)
        baseline = predictor.predict(graph, backend="gas", workers=2)
        with tempfile.TemporaryDirectory() as scratch:
            scratch = Path(scratch)
            fault = one_shot_fault(scratch, crash_step, 0)
            recovered = predictor.predict(
                graph, backend="gas", workers=2,
                checkpoint_dir=scratch / "ckpt", checkpoint_every=cadence,
                fault=fault,
            )
        assert recovered.predictions == baseline.predictions
        assert dict(recovered.scores) == dict(baseline.scores)
