"""Hypothesis property: the columnar state plane never changes the answer.

For random graphs, scoring configurations, backends (``gas``/``bsp``) and
worker counts (serial, 1 and 4 worker processes), a run on the columnar
:class:`~repro.runtime.state.StateStore` path must be *bit-identical* —
predictions and candidate scores — to the same run forced onto the legacy
per-vertex-dict path via the ``SNAPLE_DICT_STATE=1`` escape hatch.

Each example spins up real worker processes, so the graphs stay small and
the example counts low; ``tests/runtime/test_state_plane.py`` covers larger
fixed graphs.
"""

from __future__ import annotations

import math
import os

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.generators import powerlaw_cluster
from repro.snaple.config import SnapleConfig
from repro.snaple.predictor import SnapleLinkPredictor

graphs = st.builds(
    powerlaw_cluster,
    st.integers(min_value=20, max_value=60),
    st.integers(min_value=2, max_value=4),
    st.floats(min_value=0.0, max_value=0.8),
    seed=st.integers(min_value=0, max_value=500),
)

#: Configurations mixing truncation (sometimes active on these degrees),
#: finite and infinite sampling budgets, and different scores.
configs = st.builds(
    SnapleConfig.paper_default,
    st.sampled_from(["linearSum", "counter", "geomMean"]),
    k=st.integers(min_value=1, max_value=5),
    k_local=st.sampled_from([4, 10, math.inf]),
    truncation_threshold=st.sampled_from([3.0, 8.0, 200.0]),
    seed=st.integers(min_value=0, max_value=100),
)


def _predict(graph, config, backend, workers, *, dict_state):
    previous = os.environ.get("SNAPLE_DICT_STATE")
    try:
        if dict_state:
            os.environ["SNAPLE_DICT_STATE"] = "1"
        else:
            os.environ.pop("SNAPLE_DICT_STATE", None)
        options = {} if workers is None else {"workers": workers}
        return SnapleLinkPredictor(config).predict(
            graph, backend=backend, **options
        )
    finally:
        if previous is None:
            os.environ.pop("SNAPLE_DICT_STATE", None)
        else:
            os.environ["SNAPLE_DICT_STATE"] = previous


class TestStatePlaneParity:
    @settings(max_examples=5, deadline=None)
    @given(graph=graphs, config=configs,
           backend=st.sampled_from(["gas", "bsp"]),
           workers=st.sampled_from([None, 1, 4]))
    def test_columnar_equals_dict_path(self, graph, config, backend, workers):
        columnar = _predict(graph, config, backend, workers, dict_state=False)
        legacy = _predict(graph, config, backend, workers, dict_state=True)
        assert columnar.predictions == legacy.predictions
        assert columnar.scores == legacy.scores
        assert columnar.supersteps == legacy.supersteps
