"""Hypothesis property tests for the graph substrate."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.digraph import DiGraph
from repro.graph.sampling import reservoir_sample
from repro.graph.stats import degree_coverage, out_degree_cdf


@st.composite
def edge_lists(draw, max_vertices: int = 30, max_edges: int = 120):
    """Random (num_vertices, sources, targets) triples without self loops."""
    num_vertices = draw(st.integers(min_value=2, max_value=max_vertices))
    num_edges = draw(st.integers(min_value=0, max_value=max_edges))
    pairs = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=num_vertices - 1),
                st.integers(min_value=0, max_value=num_vertices - 1),
            ).filter(lambda pair: pair[0] != pair[1]),
            min_size=num_edges,
            max_size=num_edges,
        )
    )
    unique = sorted(set(pairs))
    sources = [s for s, _ in unique]
    targets = [t for _, t in unique]
    return num_vertices, sources, targets


class TestGraphInvariants:
    @given(edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_degree_sums_equal_edge_count(self, data):
        num_vertices, sources, targets = data
        graph = DiGraph(num_vertices, sources, targets)
        assert int(graph.out_degrees().sum()) == graph.num_edges
        assert int(graph.in_degrees().sum()) == graph.num_edges

    @given(edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_out_and_in_adjacency_are_consistent(self, data):
        num_vertices, sources, targets = data
        graph = DiGraph(num_vertices, sources, targets)
        for u in graph.vertices():
            for v in graph.out_neighbors(u).tolist():
                assert u in graph.in_neighbors(v).tolist()

    @given(edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_reversed_twice_is_identity(self, data):
        num_vertices, sources, targets = data
        graph = DiGraph(num_vertices, sources, targets)
        assert graph.reversed().reversed() == graph

    @given(edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_to_undirected_is_symmetric_and_idempotent(self, data):
        num_vertices, sources, targets = data
        undirected = DiGraph(num_vertices, sources, targets).to_undirected()
        for u, v in undirected.edges():
            assert undirected.has_edge(v, u)
        assert undirected.to_undirected().num_edges == undirected.num_edges

    @given(edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_has_edge_matches_edge_list(self, data):
        num_vertices, sources, targets = data
        graph = DiGraph(num_vertices, sources, targets)
        edge_set = set(zip(sources, targets))
        for u in graph.vertices():
            for v in graph.vertices():
                assert graph.has_edge(u, v) == ((u, v) in edge_set)

    @given(edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_two_hop_candidates_never_include_direct_neighbors(self, data):
        num_vertices, sources, targets = data
        graph = DiGraph(num_vertices, sources, targets)
        for u in graph.vertices():
            candidates = graph.two_hop_neighbors(u)
            assert u not in candidates
            assert not candidates & graph.neighbor_set(u)


class TestStatsInvariants:
    @given(edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_cdf_is_monotone_and_reaches_one(self, data):
        num_vertices, sources, targets = data
        graph = DiGraph(num_vertices, sources, targets)
        cdf = out_degree_cdf(graph)
        values = list(cdf.cumulative)
        assert values == sorted(values)
        if values:
            assert values[-1] == 1.0

    @given(edge_lists(), st.integers(min_value=0, max_value=200))
    @settings(max_examples=60, deadline=None)
    def test_degree_coverage_in_unit_interval(self, data, threshold):
        num_vertices, sources, targets = data
        graph = DiGraph(num_vertices, sources, targets)
        assert 0.0 <= degree_coverage(graph, threshold) <= 1.0


class TestSamplingInvariants:
    @given(
        st.lists(st.integers(min_value=0, max_value=1000), min_size=0, max_size=200),
        st.integers(min_value=0, max_value=50),
        st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=80, deadline=None)
    def test_reservoir_sample_size_and_membership(self, neighbors, threshold, seed):
        sample = reservoir_sample(neighbors, threshold, rng=random.Random(seed))
        assert len(sample) == min(len(neighbors), threshold)
        assert all(item in neighbors for item in sample)
