"""Hypothesis property tests for the GAS engine and predictor invariants."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gas.cluster import TYPE_I, cluster_of
from repro.gas.engine import GasEngine
from repro.gas.partition import partition_graph
from repro.gas.vertex_program import VertexProgram
from repro.graph.generators import powerlaw_cluster
from repro.snaple.config import SnapleConfig
from repro.snaple.predictor import SnapleLinkPredictor


class _DegreeProgram(VertexProgram):
    name = "degree"

    def gather(self, u, v, u_data, v_data):
        return 1

    def sum(self, left, right):
        return left + right

    def apply(self, u, u_data, gathered):
        u_data["degree"] = gathered if gathered is not None else 0


graphs = st.builds(
    powerlaw_cluster,
    st.integers(min_value=20, max_value=80),
    st.integers(min_value=2, max_value=4),
    st.floats(min_value=0.0, max_value=0.9),
    seed=st.integers(min_value=0, max_value=1000),
)


class TestPartitionProperties:
    @given(graphs, st.integers(min_value=1, max_value=8),
           st.integers(min_value=0, max_value=100))
    @settings(max_examples=40, deadline=None)
    def test_partition_covers_all_edges_and_vertices(self, graph, machines, seed):
        partition = partition_graph(graph, machines, seed=seed)
        assert partition.num_edges == graph.num_edges
        assert partition.num_vertices == graph.num_vertices
        assert partition.edges_per_machine().sum() == graph.num_edges
        for vertex in graph.vertices():
            assert int(partition.vertex_master[vertex]) in partition.machines_of(vertex)

    @given(graphs, st.integers(min_value=1, max_value=8),
           st.integers(min_value=0, max_value=100))
    @settings(max_examples=40, deadline=None)
    def test_replication_factor_bounded_by_machines(self, graph, machines, seed):
        partition = partition_graph(graph, machines, seed=seed)
        assert 1.0 <= partition.replication_factor() <= machines


class TestEngineProperties:
    @given(graphs, st.integers(min_value=1, max_value=6))
    @settings(max_examples=20, deadline=None)
    def test_engine_results_independent_of_machine_count(self, graph, machines):
        single = GasEngine(graph=graph, cluster=cluster_of(TYPE_I, 1))
        multi = GasEngine(graph=graph, cluster=cluster_of(TYPE_I, machines))
        result_single = single.run([_DegreeProgram()])
        result_multi = multi.run([_DegreeProgram()])
        for vertex in graph.vertices():
            assert (
                result_single.data_of(vertex)["degree"]
                == result_multi.data_of(vertex)["degree"]
                == graph.out_degree(vertex)
            )

    @given(graphs)
    @settings(max_examples=20, deadline=None)
    def test_gather_invocations_match_edge_count(self, graph):
        engine = GasEngine(graph=graph)
        result = engine.run([_DegreeProgram()])
        assert result.metrics.steps[0].gather_invocations == graph.num_edges


class TestPredictorProperties:
    @given(graphs, st.integers(min_value=1, max_value=8),
           st.integers(min_value=2, max_value=30))
    @settings(max_examples=20, deadline=None)
    def test_predictions_are_valid_new_edges(self, graph, k, k_local):
        config = SnapleConfig(k=k, k_local=k_local)
        result = SnapleLinkPredictor(config).predict(graph)
        for u, targets in result.predictions.items():
            assert len(targets) <= k
            assert len(set(targets)) == len(targets)
            direct = graph.neighbor_set(u)
            for z in targets:
                assert z != u
                assert z not in direct
                assert 0 <= z < graph.num_vertices

    @given(graphs, st.integers(min_value=2, max_value=20))
    @settings(max_examples=15, deadline=None)
    def test_predicted_candidates_lie_in_two_hop_neighborhood(self, graph, k_local):
        config = SnapleConfig(k_local=k_local)
        result = SnapleLinkPredictor(config).predict(graph)
        for u, targets in result.predictions.items():
            two_hop = graph.two_hop_neighbors(u)
            assert set(targets) <= two_hop
