"""Hypothesis properties of the shared-nothing parallel execution layer.

Two properties pin down what makes parallel execution trustworthy:

* **determinism** — for a fixed seed, running the same parallel
  configuration twice produces bit-identical predictions and scores;
* **partition independence** — the number of partitions/workers (and the
  partitioner placing them) never changes the predictions, only the
  accounting.

Each example spins up real worker processes, so the graphs stay small and
the example counts low; the parity suite covers larger fixed graphs.
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.generators import powerlaw_cluster
from repro.snaple.config import SnapleConfig
from repro.snaple.predictor import SnapleLinkPredictor

graphs = st.builds(
    powerlaw_cluster,
    st.integers(min_value=20, max_value=60),
    st.integers(min_value=2, max_value=4),
    st.floats(min_value=0.0, max_value=0.8),
    seed=st.integers(min_value=0, max_value=500),
)

#: Configurations mixing truncation (sometimes active on these degrees),
#: finite and infinite sampling budgets, and different scores.
configs = st.builds(
    SnapleConfig.paper_default,
    st.sampled_from(["linearSum", "counter", "geomMean"]),
    k=st.integers(min_value=1, max_value=5),
    k_local=st.sampled_from([4, 10, math.inf]),
    truncation_threshold=st.sampled_from([3.0, 8.0, 200.0]),
    seed=st.integers(min_value=0, max_value=100),
)


class TestParallelDeterminism:
    @settings(max_examples=5, deadline=None)
    @given(graph=graphs, config=configs,
           backend=st.sampled_from(["gas", "bsp"]),
           workers=st.integers(min_value=1, max_value=3))
    def test_fixed_seed_is_deterministic(self, graph, config, backend, workers):
        predictor = SnapleLinkPredictor(config)
        first = predictor.predict(graph, backend=backend, workers=workers)
        second = predictor.predict(graph, backend=backend, workers=workers)
        assert first.predictions == second.predictions
        assert first.scores == second.scores
        assert first.supersteps == second.supersteps


class TestPartitionIndependence:
    @settings(max_examples=5, deadline=None)
    @given(graph=graphs, config=configs,
           backend=st.sampled_from(["gas", "bsp"]),
           workers=st.integers(min_value=2, max_value=4))
    def test_worker_count_never_changes_predictions(self, graph, config,
                                                    backend, workers):
        predictor = SnapleLinkPredictor(config)
        single = predictor.predict(graph, backend=backend, workers=1)
        many = predictor.predict(graph, backend=backend, workers=workers)
        assert single.predictions == many.predictions
        assert single.scores == many.scores
        assert single.supersteps == many.supersteps

    @settings(max_examples=5, deadline=None)
    @given(graph=graphs, config=configs,
           workers=st.integers(min_value=2, max_value=4))
    def test_partition_accounting_always_sums(self, graph, config, workers):
        predictor = SnapleLinkPredictor(config)
        report = predictor.predict(graph, backend="gas", workers=workers)
        assert len(report.partition_reports) == workers
        assert sum(
            partition.num_predictions
            for partition in report.partition_reports
        ) == len(report.predictions)
        assert sum(
            partition.num_vertices for partition in report.partition_reports
        ) == graph.num_vertices
