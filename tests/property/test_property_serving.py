"""Hypothesis property: incremental serving never diverges from batch.

For random base graphs, random streams of absent edges (applied in random
batch splits, with a compaction at a random point), and configurations that
exercise truncation and klocal sampling, the incrementally maintained index
must be *bit-identical* — predictions and candidate scores — to a cold
build on the final merged graph.

A second property cross-checks the cold build itself against the serial
``local`` engine for non-random configurations (where every engine agrees),
closing the loop to the batch reference implementation.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.digraph import DiGraph
from repro.graph.generators import powerlaw_cluster
from repro.serving import IncrementalIndex
from repro.snaple.config import SnapleConfig
from repro.snaple.predictor import SnapleLinkPredictor

graphs = st.builds(
    powerlaw_cluster,
    st.integers(min_value=20, max_value=60),
    st.integers(min_value=2, max_value=4),
    st.floats(min_value=0.0, max_value=0.8),
    seed=st.integers(min_value=0, max_value=500),
)

#: Truncation and the klocal samplers are the RNG-bearing phases; the
#: per-vertex RNG discipline is exactly what makes dirty-region rescoring
#: exact, so the strategy leans into small thresholds and budgets.
configs = st.builds(
    SnapleConfig.paper_default,
    st.sampled_from(["linearSum", "counter", "geomSum"]),
    k=st.integers(min_value=1, max_value=5),
    k_local=st.sampled_from([2, 4, 10]),
    truncation_threshold=st.sampled_from([3.0, 8.0, 200.0]),
    sampler_name=st.sampled_from(["max", "min", "rnd"]),
    seed=st.integers(min_value=0, max_value=100),
)


def _draw_stream(draw, graph):
    """A unique stream of up to 12 edges absent from ``graph``."""
    count = draw(st.integers(min_value=1, max_value=12))
    rng = np.random.default_rng(draw(st.integers(0, 1000)))
    edges, seen = [], set()
    attempts = 0
    while len(edges) < count and attempts < 400:
        attempts += 1
        u = int(rng.integers(graph.num_vertices))
        v = int(rng.integers(graph.num_vertices))
        if u != v and (u, v) not in seen and not graph.has_edge(u, v):
            edges.append((u, v))
            seen.add((u, v))
    return edges


def _merged(graph, stream):
    src, dst = graph.edge_arrays()
    return DiGraph(
        graph.num_vertices,
        np.concatenate([src, np.asarray([u for u, _ in stream], dtype=np.int64)]),
        np.concatenate([dst, np.asarray([v for _, v in stream], dtype=np.int64)]),
    )


def _assert_bit_identical(index, other):
    assert index.all_predictions() == other.all_predictions()
    for u in range(index.num_vertices):
        assert index.scores(u) == other.scores(u)


@settings(max_examples=25)
@given(data=st.data(), graph=graphs, config=configs)
def test_incremental_equals_batch_on_final_graph(data, graph, config):
    stream = _draw_stream(data.draw, graph)
    # Random batch split: each edge lands in its own apply_edges call or
    # shares one with its neighbors.
    splits = data.draw(st.lists(st.booleans(), min_size=len(stream),
                                max_size=len(stream)))
    compact_after = data.draw(
        st.integers(min_value=0, max_value=max(len(stream) - 1, 0))
    )
    index = IncrementalIndex(graph, config)
    batch: list[tuple[int, int]] = []
    for position, (edge, flush) in enumerate(zip(stream, splits)):
        batch.append(edge)
        if flush or position == len(stream) - 1:
            index.apply_edges(batch)
            batch = []
        if position == compact_after:
            index.compact()
    cold = IncrementalIndex(_merged(graph, stream), config)
    _assert_bit_identical(index, cold)


@settings(max_examples=15)
@given(
    data=st.data(),
    graph=graphs,
    config=st.builds(
        SnapleConfig.paper_default,
        st.sampled_from(["linearSum", "geomMean"]),
        k=st.integers(min_value=1, max_value=5),
        k_local=st.sampled_from([4, 10]),
        # No truncation, deterministic sampler: every engine agrees, so the
        # incremental result must also match the serial local engine.
        truncation_threshold=st.just(200.0),
        sampler_name=st.just("max"),
        seed=st.integers(min_value=0, max_value=100),
    ),
)
def test_incremental_matches_local_engine_without_rng(data, graph, config):
    stream = _draw_stream(data.draw, graph)
    index = IncrementalIndex(graph, config)
    for edge in stream:
        index.apply_edges([edge])
    merged = _merged(graph, stream)
    report = SnapleLinkPredictor(config).predict(merged, backend="local")
    assert index.all_predictions() == report.predictions
    # The scalar local engine folds scores in a different order than the
    # vectorized kernel, so this cross-check is exact on predictions and
    # ULP-tolerant on scores (the *bit-exact* contract is against the
    # parallel gas/bsp backends, asserted above and in tests/serving).
    for u in range(merged.num_vertices):
        expected = dict(report.scores[u])
        actual = index.scores(u)
        assert actual.keys() == expected.keys()
        for candidate, value in actual.items():
            assert value == pytest.approx(expected[candidate], rel=1e-9)
