"""Hypothesis property tests for SNAPLE's scoring framework."""

from __future__ import annotations

import math
import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.snaple.aggregators import AGGREGATORS
from repro.snaple.combinators import COMBINATORS, LinearCombinator
from repro.snaple.sampler import SAMPLERS
from repro.snaple.similarity import jaccard

similarity_values = st.floats(min_value=0.0, max_value=1.0,
                              allow_nan=False, allow_infinity=False)


class TestCombinatorProperties:
    @given(similarity_values, similarity_values,
           st.sampled_from(sorted(COMBINATORS)))
    @settings(max_examples=200, deadline=None)
    def test_non_negative_and_finite(self, a, b, name):
        result = COMBINATORS[name].combine(a, b)
        assert result >= 0.0
        assert math.isfinite(result)

    @given(similarity_values, similarity_values, similarity_values,
           st.sampled_from(sorted(COMBINATORS)))
    @settings(max_examples=200, deadline=None)
    def test_monotone_in_first_argument(self, a, increment, b, name):
        combinator = COMBINATORS[name]
        assert combinator.combine(a + increment, b) >= combinator.combine(a, b) - 1e-12

    @given(similarity_values, similarity_values,
           st.floats(min_value=0.0, max_value=1.0, allow_nan=False))
    @settings(max_examples=200, deadline=None)
    def test_linear_combination_bounded_by_inputs(self, a, b, alpha):
        result = LinearCombinator(alpha=alpha).combine(a, b)
        assert min(a, b) - 1e-12 <= result <= max(a, b) + 1e-12


class TestAggregatorProperties:
    @given(st.lists(similarity_values, min_size=1, max_size=20),
           st.sampled_from(sorted(AGGREGATORS)))
    @settings(max_examples=200, deadline=None)
    def test_incremental_equals_batch(self, values, name):
        # The ⊕pre / ⊕post decomposition (equation (10)) must agree with the
        # one-shot reduction regardless of how many values arrive.
        aggregator = AGGREGATORS[name]
        accumulated = values[0]
        for value in values[1:]:
            accumulated = aggregator.pre(accumulated, value)
        incremental = aggregator.post(accumulated, len(values))
        assert incremental == pytest_approx(aggregator.aggregate(values))

    @given(st.lists(similarity_values, min_size=1, max_size=20),
           st.sampled_from(sorted(AGGREGATORS)),
           st.randoms(use_true_random=False))
    @settings(max_examples=200, deadline=None)
    def test_order_invariance(self, values, name, rng):
        aggregator = AGGREGATORS[name]
        shuffled = list(values)
        rng.shuffle(shuffled)
        assert aggregator.aggregate(shuffled) == pytest_approx(
            aggregator.aggregate(values)
        )

    @given(st.lists(similarity_values, min_size=1, max_size=20))
    @settings(max_examples=200, deadline=None)
    def test_mean_and_geom_bounded_by_extremes(self, values):
        for name in ("Mean", "Geom"):
            result = AGGREGATORS[name].aggregate(values)
            assert result <= max(values) + 1e-9
            assert result >= -1e-9


class TestSimilarityProperties:
    neighbor_sets = st.lists(st.integers(min_value=0, max_value=50),
                             min_size=0, max_size=30)

    @given(neighbor_sets, neighbor_sets)
    @settings(max_examples=200, deadline=None)
    def test_jaccard_bounded_and_symmetric(self, left, right):
        value = jaccard(left, right)
        assert 0.0 <= value <= 1.0
        assert value == pytest_approx(jaccard(right, left))

    @given(neighbor_sets)
    @settings(max_examples=200, deadline=None)
    def test_jaccard_identity(self, neighbors):
        expected = 1.0 if set(neighbors) else 0.0
        assert jaccard(neighbors, neighbors) == pytest_approx(expected)


class TestSamplerProperties:
    similarity_maps = st.dictionaries(
        keys=st.integers(min_value=0, max_value=500),
        values=similarity_values,
        max_size=40,
    )

    @given(similarity_maps, st.integers(min_value=0, max_value=50),
           st.integers(min_value=0, max_value=2**16),
           st.sampled_from(sorted(SAMPLERS)))
    @settings(max_examples=200, deadline=None)
    def test_selection_is_bounded_subset(self, similarities, k_local, seed, name):
        kept = SAMPLERS[name].select(similarities, k_local, rng=random.Random(seed))
        assert len(kept) == min(len(similarities), k_local)
        assert set(kept) <= set(similarities)
        for vertex, value in kept.items():
            assert value == similarities[vertex]

    @given(similarity_maps, st.integers(min_value=1, max_value=50),
           st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=200, deadline=None)
    def test_max_policy_dominates_min_policy(self, similarities, k_local, seed):
        # Dominance of every kept-by-Γmax value over every kept-by-Γmin value
        # only holds when the two selections cannot overlap (2·klocal ≤ |Γ|);
        # with a larger budget both policies share the middle of the ranking.
        rng = random.Random(seed)
        top = SAMPLERS["max"].select(similarities, k_local, rng=rng)
        bottom = SAMPLERS["min"].select(similarities, k_local, rng=rng)
        if top and bottom and 2 * k_local <= len(similarities):
            assert min(top.values()) >= max(bottom.values()) - 1e-12


def pytest_approx(value: float):
    """Small helper so hypothesis tests read like pytest.approx comparisons."""
    import pytest

    return pytest.approx(value, rel=1e-9, abs=1e-9)
