"""Hypothesis property tests for the BSP substrate and the SNAPLE extensions."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bsp.partition import (
    BlockVertexPartitioner,
    HashVertexPartitioner,
    partition_vertices,
)
from repro.graph.attributes import (
    generate_profiles,
    profile_cosine,
    profile_jaccard,
    profile_overlap,
)
from repro.graph.digraph import DiGraph
from repro.snaple.combinators import COMBINATORS


# ----------------------------------------------------------------------
# Shared strategies
# ----------------------------------------------------------------------
def _random_graph(num_vertices: int, num_edges: int, seed: int) -> DiGraph:
    """Small random multigraph-free directed graph built from a seed."""
    rng = random.Random(seed)
    edges = set()
    attempts = 0
    while len(edges) < num_edges and attempts < 10 * num_edges:
        attempts += 1
        u = rng.randrange(num_vertices)
        v = rng.randrange(num_vertices)
        if u != v:
            edges.add((u, v))
    sources = [u for u, _ in edges]
    targets = [v for _, v in edges]
    return DiGraph(num_vertices, sources, targets)


graph_params = st.tuples(
    st.integers(min_value=2, max_value=60),   # vertices
    st.integers(min_value=0, max_value=150),  # requested edges
    st.integers(min_value=0, max_value=2**16),  # seed
)

profile_sets = st.frozensets(st.integers(min_value=0, max_value=30), max_size=12)

similarities = st.floats(min_value=0.0, max_value=1.0,
                         allow_nan=False, allow_infinity=False)


# ----------------------------------------------------------------------
# BSP vertex partitioning
# ----------------------------------------------------------------------
class TestVertexPartitionProperties:
    @given(graph_params, st.integers(min_value=1, max_value=12),
           st.sampled_from(["hash", "block"]))
    @settings(max_examples=60, deadline=None)
    def test_every_vertex_gets_exactly_one_machine(self, params, machines, kind):
        num_vertices, num_edges, seed = params
        graph = _random_graph(num_vertices, num_edges, seed)
        partitioner = (
            HashVertexPartitioner() if kind == "hash" else BlockVertexPartitioner()
        )
        partition = partition_vertices(
            graph, machines, partitioner=partitioner, seed=seed
        )
        assert partition.vertex_machine.shape == (num_vertices,)
        assert partition.vertex_machine.min() >= 0
        assert partition.vertex_machine.max() < machines

    @given(graph_params, st.integers(min_value=1, max_value=12))
    @settings(max_examples=60, deadline=None)
    def test_cut_edges_are_bounded_by_total_edges(self, params, machines):
        num_vertices, num_edges, seed = params
        graph = _random_graph(num_vertices, num_edges, seed)
        partition = partition_vertices(graph, machines, seed=seed)
        assert 0 <= partition.cut_edges(graph) <= graph.num_edges
        assert 0.0 <= partition.cut_fraction(graph) <= 1.0

    @given(graph_params)
    @settings(max_examples=40, deadline=None)
    def test_single_machine_never_cuts_an_edge(self, params):
        num_vertices, num_edges, seed = params
        graph = _random_graph(num_vertices, num_edges, seed)
        partition = partition_vertices(graph, 1, seed=seed)
        assert partition.cut_edges(graph) == 0

    @given(graph_params, st.integers(min_value=1, max_value=12))
    @settings(max_examples=40, deadline=None)
    def test_vertices_per_machine_sums_to_vertex_count(self, params, machines):
        num_vertices, num_edges, seed = params
        graph = _random_graph(num_vertices, num_edges, seed)
        partition = partition_vertices(graph, machines, seed=seed)
        assert int(partition.vertices_per_machine().sum()) == num_vertices


# ----------------------------------------------------------------------
# Combinator fold (the K-hop extension's core operation)
# ----------------------------------------------------------------------
class TestCombinatorFoldProperties:
    @given(st.lists(similarities, min_size=1, max_size=6),
           st.sampled_from(sorted(COMBINATORS)))
    @settings(max_examples=150, deadline=None)
    def test_fold_of_singleton_is_identity(self, values, name):
        combinator = COMBINATORS[name]
        assert combinator.fold([values[0]]) == values[0]

    @given(st.lists(similarities, min_size=2, max_size=6),
           st.sampled_from(sorted(COMBINATORS)))
    @settings(max_examples=150, deadline=None)
    def test_fold_matches_repeated_combination(self, values, name):
        combinator = COMBINATORS[name]
        expected = values[0]
        for value in values[1:]:
            expected = combinator.combine(expected, value)
        assert combinator.fold(values) == expected

    @given(similarities, similarities, st.sampled_from(sorted(COMBINATORS)))
    @settings(max_examples=150, deadline=None)
    def test_path_similarity_is_never_negative(self, a, b, name):
        assert COMBINATORS[name].combine(a, b) >= 0.0

    @given(similarities, similarities, similarities,
           st.sampled_from(sorted(COMBINATORS)))
    @settings(max_examples=150, deadline=None)
    def test_combinators_are_monotone_in_the_second_argument(self, a, b, delta, name):
        # The paper requires ⊗ to be monotonically increasing in both
        # arguments (Section 3.1); check the second one (the first follows by
        # the same argument for the symmetric combinators, and linear is
        # monotone by construction).
        combinator = COMBINATORS[name]
        lower = combinator.combine(a, b)
        higher = combinator.combine(a, min(1.0, b + delta))
        assert higher >= lower - 1e-12


# ----------------------------------------------------------------------
# Vertex profiles
# ----------------------------------------------------------------------
class TestProfileSimilarityProperties:
    @given(profile_sets, profile_sets)
    @settings(max_examples=200, deadline=None)
    def test_similarities_are_bounded_and_symmetric(self, a, b):
        for fn in (profile_jaccard, profile_cosine, profile_overlap):
            value = fn(a, b)
            assert 0.0 <= value <= 1.0
            assert value == fn(b, a)

    @given(profile_sets)
    @settings(max_examples=100, deadline=None)
    def test_identical_non_empty_profiles_have_similarity_one(self, profile):
        if profile:
            assert profile_jaccard(profile, profile) == 1.0
            assert profile_cosine(profile, profile) == 1.0
            assert profile_overlap(profile, profile) == 1.0

    @given(profile_sets, profile_sets)
    @settings(max_examples=100, deadline=None)
    def test_jaccard_is_a_lower_bound_on_overlap(self, a, b):
        assert profile_jaccard(a, b) <= profile_overlap(a, b) + 1e-12

    @given(graph_params,
           st.integers(min_value=1, max_value=20),
           st.integers(min_value=0, max_value=6))
    @settings(max_examples=40, deadline=None)
    def test_generated_profiles_respect_bounds(self, params, num_tags, per_vertex):
        num_vertices, num_edges, seed = params
        graph = _random_graph(num_vertices, num_edges, seed)
        profiles = generate_profiles(
            graph, num_tags=num_tags, tags_per_vertex=per_vertex, seed=seed
        )
        assert profiles.num_vertices == num_vertices
        for u in graph.vertices():
            profile = profiles.of(u)
            assert len(profile) <= min(per_vertex, num_tags)
            assert all(0 <= tag < num_tags for tag in profile)
