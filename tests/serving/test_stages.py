"""Stage instrumentation: bounded sampling, merging, operational laws."""

from __future__ import annotations

import pytest

from repro.serving.stages import (
    StageRecorder,
    merge_snapshots,
    operational_analysis,
)


class TestStageRecorder:
    def test_totals_and_samples(self):
        recorder = StageRecorder("stage", servers=2)
        recorder.record(0.1, 0.2)
        recorder.record(0.3, 0.4)
        recorder.sample_depth(5)
        snap = recorder.snapshot()
        assert snap["name"] == "stage"
        assert snap["servers"] == 2
        assert snap["count"] == 2
        assert snap["wait_total"] == pytest.approx(0.4)
        assert snap["service_total"] == pytest.approx(0.6)
        assert snap["busy_seconds"] == pytest.approx(0.6)
        assert snap["wait_samples"] == [0.1, 0.3]
        assert snap["service_samples"] == [0.2, 0.4]
        assert snap["depth_samples"] == [5]

    def test_decimation_bounds_memory_but_not_totals(self):
        recorder = StageRecorder("hot")
        total = 50_000
        for i in range(total):
            recorder.record(1e-6, 2e-6)
            recorder.sample_depth(i)
        snap = recorder.snapshot()
        assert snap["count"] == total
        assert snap["wait_total"] == pytest.approx(total * 1e-6)
        # Stride-doubling keeps the retained buffers bounded.
        assert len(snap["wait_samples"]) <= 4096
        assert len(snap["service_samples"]) == len(snap["wait_samples"])
        assert len(snap["depth_samples"]) <= 4096
        assert len(snap["wait_samples"]) > 0

    def test_reset(self):
        recorder = StageRecorder("stage")
        recorder.record(0.1, 0.2)
        recorder.sample_depth(3)
        recorder.reset()
        snap = recorder.snapshot()
        assert snap["count"] == 0
        assert snap["wait_total"] == 0.0
        assert snap["wait_samples"] == []
        assert snap["depth_samples"] == []


class TestMergeSnapshots:
    def test_merge_adds_servers_and_concatenates(self):
        a = StageRecorder("shard_queue")
        b = StageRecorder("shard_queue")
        a.record(0.1, 0.2)
        b.record(0.3, 0.4)
        b.record(0.5, 0.6)
        b.sample_depth(2)
        merged = merge_snapshots([a.snapshot(), b.snapshot()])
        assert merged["name"] == "shard_queue"
        # Four shard processes are four servers of the one logical stage.
        assert merged["servers"] == 2
        assert merged["count"] == 3
        assert merged["wait_total"] == pytest.approx(0.9)
        assert sorted(merged["wait_samples"]) == [0.1, 0.3, 0.5]
        assert merged["depth_samples"] == [2]

    def test_merge_rejects_empty(self):
        with pytest.raises(ValueError):
            merge_snapshots([])


class TestOperationalAnalysis:
    def _snapshot(self, name, *, servers, count, wait, service, depths):
        return {
            "name": name,
            "servers": servers,
            "count": count,
            "wait_total": wait,
            "service_total": service,
            "busy_seconds": service,
            "wait_samples": [wait / count] * count if count else [],
            "service_samples": [service / count] * count if count else [],
            "depth_samples": depths,
        }

    def test_laws_and_bottleneck(self):
        snapshots = {
            "dispatch": self._snapshot("dispatch", servers=1, count=100,
                                       wait=1.0, service=2.0, depths=[3, 3]),
            "rescore": self._snapshot("rescore", servers=4, count=100,
                                      wait=0.5, service=32.0, depths=[]),
        }
        table = operational_analysis(snapshots, elapsed_seconds=10.0)
        assert table["elapsed_seconds"] == 10.0
        dispatch = table["stages"]["dispatch"]
        assert dispatch["arrival_rate_per_s"] == pytest.approx(10.0)
        # U = busy / (servers * elapsed) = 2 / 10.
        assert dispatch["utilization"] == pytest.approx(0.2)
        # L = lambda * W = 10 * (1 + 2) / 100.
        assert dispatch["little_queue_length"] == pytest.approx(0.3)
        assert dispatch["measured_queue_length"] == pytest.approx(3.0)
        assert dispatch["little_fit_error"] == pytest.approx(2.7 / 0.3)
        rescore = table["stages"]["rescore"]
        # U = 32 / (4 * 10): the saturating stage.
        assert rescore["utilization"] == pytest.approx(0.8)
        assert table["bottleneck"] == "rescore"
        assert table["bottleneck_utilization"] == pytest.approx(0.8)

    def test_idle_stage_degenerates_to_zeros(self):
        snapshots = {
            "idle": self._snapshot("idle", servers=1, count=0,
                                   wait=0.0, service=0.0, depths=[]),
        }
        table = operational_analysis(snapshots, elapsed_seconds=5.0)
        idle = table["stages"]["idle"]
        assert idle["utilization"] == 0.0
        assert idle["mean_wait_ms"] == 0.0
        assert idle["little_fit_error"] == 0.0
        assert idle["wait"] == {"p50_ms": 0.0, "p99_ms": 0.0}
        assert table["bottleneck"] == "idle"
        assert table["bottleneck_utilization"] == 0.0
