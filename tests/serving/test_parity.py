"""Streaming parity: served answers == cold batch predict on the final graph.

The acceptance contract of the serving subsystem: at any point in an edge
stream the service's predictions *and scores* are bit-identical to a cold
batch ``predict`` over the merged graph — for the parallel ``gas`` and
``bsp`` backends (the per-vertex-RNG paths) on both the columnar and the
legacy dict state planes (``SNAPLE_DICT_STATE=1``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.digraph import DiGraph
from repro.serving import PredictorService, ServingConfig
from repro.snaple.config import SnapleConfig
from repro.snaple.predictor import SnapleLinkPredictor

#: A plain configuration (no truncation on these degrees) and a config where
#: truncation and klocal sampling are active — the RNG-bearing phases.
CONFIGS = {
    "plain": SnapleConfig.paper_default(seed=3, k_local=6),
    "truncating": SnapleConfig.paper_default(
        "geomSum", seed=9, k=4, k_local=3, truncation_threshold=4,
        sampler_name="max",
    ),
}


def _stream(graph, count, seed):
    rng = np.random.default_rng(seed)
    edges, seen = [], set()
    while len(edges) < count:
        u = int(rng.integers(graph.num_vertices))
        v = int(rng.integers(graph.num_vertices))
        if u != v and (u, v) not in seen and not graph.has_edge(u, v):
            edges.append((u, v))
            seen.add((u, v))
    return edges


def _merged(graph, stream):
    src, dst = graph.edge_arrays()
    return DiGraph(
        graph.num_vertices,
        np.concatenate([src, np.asarray([u for u, _ in stream])]),
        np.concatenate([dst, np.asarray([v for _, v in stream])]),
    )


@pytest.fixture(scope="module")
def streamed_service(random_graph):
    """One service per config, fed a 15-edge stream crossing a compaction."""
    base = random_graph(150, 3, 0.3, seed=11)
    built = {}
    for name, config in CONFIGS.items():
        stream = _stream(base, 15, seed=17)
        service = PredictorService(
            base, config,
            serving=ServingConfig(workers=2, compact_every=8),
        ).start()
        for edge in stream:
            service.ingest([edge])
        assert service.stats().compactions >= 1
        built[name] = (service, _merged(base, stream))
    yield built
    for service, _ in built.values():
        service.stop()


@pytest.mark.parametrize("name", sorted(CONFIGS))
@pytest.mark.parametrize("backend", ["gas", "bsp"])
@pytest.mark.parametrize("dict_state", [False, True],
                         ids=["columnar", "dict-state"])
def test_stream_matches_cold_batch(streamed_service, monkeypatch, name,
                                   backend, dict_state):
    if dict_state:
        monkeypatch.setenv("SNAPLE_DICT_STATE", "1")
    else:
        monkeypatch.delenv("SNAPLE_DICT_STATE", raising=False)
    service, merged = streamed_service[name]
    report = SnapleLinkPredictor(CONFIGS[name]).predict(
        merged, backend=backend, workers=1
    )
    served = service.report()
    assert served.predictions == report.predictions
    for u in range(merged.num_vertices):
        assert served.scores[u] == dict(report.scores[u])


@pytest.mark.parametrize("name", sorted(CONFIGS))
def test_top_k_answers_match_cold_batch(streamed_service, name):
    service, merged = streamed_service[name]
    report = SnapleLinkPredictor(CONFIGS[name]).predict(
        merged, backend="gas", workers=1
    )
    for u in range(0, merged.num_vertices, 13):
        answer = service.top_k(u)
        assert answer.predicted == report.predictions[u]
        expected = [report.scores[u][z] for z in answer.predicted]
        assert answer.scores == expected
