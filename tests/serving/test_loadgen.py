"""Load generator: config validation and windowed accounting invariants."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.serving import (
    LoadConfig,
    LoadGenerator,
    PredictorService,
    ServingConfig,
)
from repro.snaple.config import SnapleConfig


class TestLoadConfigValidation:
    @pytest.mark.parametrize("kwargs", [
        {"clients": 0},
        {"windows": 0},
        {"window_seconds": 0.0},
        {"window_seconds": -1.0},
        {"ingest_fraction": -0.1},
        {"ingest_fraction": 1.5},
        {"warmup_windows": -1},
        {"cooldown_windows": -1},
        # Stable cut empty: warmup + cooldown consume every window.
        {"windows": 3, "warmup_windows": 2, "cooldown_windows": 1},
    ])
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            LoadConfig(**kwargs)


class TestRunAccounting:
    @pytest.fixture(scope="class")
    def result(self, random_graph):
        graph = random_graph(100, 3, 0.3, seed=13)
        config = SnapleConfig.paper_default(seed=3, k_local=6)
        load = LoadConfig(clients=2, windows=3, window_seconds=0.15,
                          warmup_windows=1, ingest_fraction=0.2, seed=5)
        with PredictorService(graph, config,
                              serving=ServingConfig(workers=2)) as service:
            return LoadGenerator(service, load).run(), service.stats()

    def test_window_trajectory(self, result):
        run, _stats = result
        assert len(run.windows) == 3
        assert [w.window for w in run.windows] == [0, 1, 2]
        for window in run.windows:
            assert window.operations == window.queries + window.ingests
            assert window.throughput_ops == pytest.approx(
                window.operations / run.window_seconds
            )
            if window.operations:
                assert 0 <= window.p50_ms <= window.p99_ms

    def test_totals_are_sums(self, result):
        run, _stats = result
        assert run.total_operations == sum(w.operations for w in run.windows)
        assert run.total_ingests == sum(w.ingests for w in run.windows)
        assert run.total_queries == run.total_operations - run.total_ingests
        assert run.total_operations > 0

    def test_stable_cut_excludes_warmup(self, result):
        run, _stats = result
        assert run.stable_windows == 2
        stable_ops = sum(w.operations for w in run.windows[1:])
        assert run.stable_operations == stable_ops
        assert run.stable_throughput_ops == pytest.approx(
            stable_ops / (2 * run.window_seconds)
        )
        if run.stable_operations:
            assert 0 <= run.stable_p50_ms <= run.stable_p99_ms

    def test_mix_reached_the_service(self, result):
        run, stats = result
        # Operations completing after the last window still hit the service,
        # so the service-side counters bound the windowed totals from above.
        assert stats.requests_served >= run.total_queries
        assert run.total_ingests > 0

    def test_to_dict_is_json_ready(self, result):
        import json

        run, _stats = result
        payload = run.to_dict()
        assert json.loads(json.dumps(payload)) == payload
        assert payload["offered_clients"] == 2
        assert len(payload["windows"]) == 3
