"""Load generator: config validation and windowed accounting invariants."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.serving import (
    LoadConfig,
    LoadGenerator,
    PredictorService,
    ServingConfig,
)
from repro.snaple.config import SnapleConfig


class TestLoadConfigValidation:
    @pytest.mark.parametrize("kwargs", [
        {"clients": 0},
        {"windows": 0},
        {"window_seconds": 0.0},
        {"window_seconds": -1.0},
        {"ingest_fraction": -0.1},
        {"ingest_fraction": 1.5},
        {"warmup_windows": -1},
        {"cooldown_windows": -1},
        # Stable cut empty: warmup + cooldown consume every window.
        {"windows": 3, "warmup_windows": 2, "cooldown_windows": 1},
    ])
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            LoadConfig(**kwargs)


class TestRunAccounting:
    @pytest.fixture(scope="class")
    def result(self, random_graph):
        graph = random_graph(100, 3, 0.3, seed=13)
        config = SnapleConfig.paper_default(seed=3, k_local=6)
        load = LoadConfig(clients=2, windows=3, window_seconds=0.15,
                          warmup_windows=1, ingest_fraction=0.2, seed=5)
        with PredictorService(graph, config,
                              serving=ServingConfig(workers=2)) as service:
            return LoadGenerator(service, load).run(), service.stats()

    def test_window_trajectory(self, result):
        run, _stats = result
        assert len(run.windows) == 3
        assert [w.window for w in run.windows] == [0, 1, 2]
        for window in run.windows:
            assert window.operations == window.queries + window.ingests
            assert window.throughput_ops == pytest.approx(
                window.operations / run.window_seconds
            )
            if window.operations:
                assert 0 <= window.p50_ms <= window.p99_ms

    def test_totals_are_sums(self, result):
        run, _stats = result
        assert run.total_operations == sum(w.operations for w in run.windows)
        assert run.total_ingests == sum(w.ingests for w in run.windows)
        assert run.total_queries == run.total_operations - run.total_ingests
        assert run.total_operations > 0

    def test_stable_cut_excludes_warmup(self, result):
        run, _stats = result
        assert run.stable_windows == 2
        stable_ops = sum(w.operations for w in run.windows[1:])
        assert run.stable_operations == stable_ops
        assert run.stable_throughput_ops == pytest.approx(
            stable_ops / (2 * run.window_seconds)
        )
        if run.stable_operations:
            assert 0 <= run.stable_p50_ms <= run.stable_p99_ms

    def test_mix_reached_the_service(self, result):
        run, stats = result
        # Operations completing after the last window still hit the service,
        # so the service-side counters bound the windowed totals from above.
        assert stats.requests_served >= run.total_queries
        assert run.total_ingests > 0

    def test_to_dict_is_json_ready(self, result):
        import json

        run, _stats = result
        payload = run.to_dict()
        assert json.loads(json.dumps(payload)) == payload
        assert payload["offered_clients"] == 2
        assert len(payload["windows"]) == 3

    def test_stage_stats_and_operational_analysis_attached(self, result):
        run, _stats = result
        assert run.stages is not None
        assert set(run.stages) >= {"query", "ingest"}
        assert run.operational is not None
        assert run.operational["bottleneck"] in run.operational["stages"]
        assert 0.0 <= run.operational["bottleneck_utilization"]


class _SlowService:
    """Duck-typed service stub with a controllable per-request latency."""

    def __init__(self, num_vertices=10, latency=0.0):
        self.num_vertices = num_vertices
        self._latency = latency

    def top_k(self, vertex, k=None):
        if self._latency:
            import time

            time.sleep(self._latency)
        return (vertex, [], [])

    def ingest(self, edges):
        return len(edges)


class TestWindowEdgeCases:
    def test_zero_completion_windows_degenerate_to_zeros(self):
        # One request outlives several windows: the windows it spans finish
        # zero operations and must report zero throughput and percentiles.
        run = LoadGenerator(_SlowService(latency=0.25), LoadConfig(
            clients=1, windows=4, window_seconds=0.05,
            warmup_windows=1, seed=1,
        )).run()
        empty = [w for w in run.windows if w.operations == 0]
        assert empty, "expected at least one zero-completion window"
        for window in empty:
            assert window.throughput_ops == 0.0
            assert window.p50_ms == window.p99_ms == 0.0
        # Stable aggregates stay well-defined even if the cut is all-empty.
        assert run.stable_windows == 3
        assert run.stable_p50_ms <= run.stable_p99_ms
        # The stub exposes no stage_stats, so the analysis is absent.
        assert run.stages is None
        assert run.operational is None

    def test_warmup_longer_than_run_rejected(self):
        with pytest.raises(ConfigurationError):
            LoadConfig(windows=2, warmup_windows=2)
        with pytest.raises(ConfigurationError):
            LoadConfig(windows=3, warmup_windows=5)

    def test_single_window_percentile_degeneracy(self):
        # windows=1 forces warmup=cooldown=0; with exactly one slow request
        # completing, p50 == p99 == the single sample.
        run = LoadGenerator(_SlowService(latency=0.06), LoadConfig(
            clients=1, windows=1, window_seconds=0.1,
            warmup_windows=0, seed=2,
        )).run()
        assert run.stable_windows == 1
        assert len(run.windows) == 1
        window = run.windows[0]
        if window.operations == 1:
            assert window.p50_ms == pytest.approx(window.p99_ms)
            assert run.stable_p50_ms == pytest.approx(run.stable_p99_ms)
        assert run.total_operations == sum(
            w.operations for w in run.windows
        )
