"""Sharded serving plane: bit-exact parity with the single-process service.

The acceptance contract of the tentpole: for any shard count, at any point
in an edge stream (additions *and* removals, across compaction boundaries),
the sharded service's answers — predictions *and* scores — are bit-identical
to the threaded :class:`PredictorService` and to a cold batch ``predict``
over the merged graph.  Plus the operational plumbing around it: batching,
stage stats, crash handling, and shm hygiene.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.errors import (
    ConfigurationError,
    GraphError,
    ServingError,
    VertexNotFoundError,
)
from repro.graph.digraph import DiGraph
from repro.runtime.partition import partition_vertices
from repro.serving import (
    PredictorService,
    ServingConfig,
    ShardedPredictorService,
    ShardMap,
)
from repro.snaple.config import SnapleConfig
from repro.snaple.predictor import SnapleLinkPredictor

CONFIG = SnapleConfig.paper_default(seed=3, k_local=6)
SHARD_COUNTS = (1, 2, 4)
SERVING = ServingConfig(workers=2, compact_every=6)


def _stream(graph, count, seed):
    rng = np.random.default_rng(seed)
    edges, seen = [], set()
    while len(edges) < count:
        u = int(rng.integers(graph.num_vertices))
        v = int(rng.integers(graph.num_vertices))
        if u != v and (u, v) not in seen and not graph.has_edge(u, v):
            edges.append((u, v))
            seen.add((u, v))
    return edges


def _unique_base_edge(graph):
    """A base edge whose (u, v) pair occurs exactly once."""
    src, dst = graph.edge_arrays()
    pairs = list(zip(src.tolist(), dst.tolist()))
    counts: dict[tuple[int, int], int] = {}
    for pair in pairs:
        counts[pair] = counts.get(pair, 0) + 1
    for pair in pairs:
        if counts[pair] == 1:
            return pair
    raise AssertionError("graph has no multiplicity-1 edge")


def _merged(base, stream, removals):
    """base + stream − removals, as a plain graph (growth-aware)."""
    src, dst = base.edge_arrays()
    edges = list(zip(src.tolist(), dst.tolist())) + list(stream)
    for edge in removals:
        edges.remove(edge)
    num_vertices = max(base.num_vertices,
                       max(max(u, v) for u, v in edges) + 1)
    return DiGraph(num_vertices, [u for u, _ in edges],
                   [v for _, v in edges])


def _shm_entries():
    try:
        return {name for name in os.listdir("/dev/shm")
                if name.startswith("snpl")}
    except FileNotFoundError:  # pragma: no cover - no /dev/shm
        return set()


@pytest.fixture(scope="module")
def grid(random_graph):
    """The same add+remove stream through every plane, plus the cold truth.

    The stream grows the vertex set (hash-fallback ownership) and crosses a
    compaction boundary (compact_every=6 < 11 streamed edges); the removals
    hit one overlay edge that compaction already folded into the base
    (tombstone path) and one original base edge.
    """
    base = random_graph(110, 3, 0.3, seed=21)
    stream = _stream(base, 10, seed=23)
    stream.append((5, base.num_vertices + 3))  # grows the vertex set
    removals = [stream[4], _unique_base_edge(base)]

    single = PredictorService(base, CONFIG, serving=SERVING).start()
    single_ingests = [single.ingest([edge]) for edge in stream]
    single_removal = single.remove(removals)

    sharded = {}
    for shards in SHARD_COUNTS:
        service = ShardedPredictorService(
            base, CONFIG, shards=shards, serving=SERVING,
        ).start()
        ingests = [service.ingest([edge]) for edge in stream]
        removal = service.remove(removals)
        sharded[shards] = (service, ingests, removal)

    merged = _merged(base, stream, removals)
    cold = SnapleLinkPredictor(CONFIG).predict(merged, backend="gas",
                                               workers=1)
    yield {
        "single": single,
        "single_ingests": single_ingests,
        "single_removal": single_removal,
        "sharded": sharded,
        "merged": merged,
        "cold": cold,
    }
    single.stop()
    for service, _, _ in sharded.values():
        service.close()


class TestParity:
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_matches_single_service_and_cold_batch(self, grid, shards):
        service, _, _ = grid["sharded"][shards]
        single, merged, cold = grid["single"], grid["merged"], grid["cold"]
        for u in range(merged.num_vertices):
            answer = service.top_k(u)
            reference = single.top_k(u)
            assert answer.predicted == reference.predicted
            assert answer.scores == reference.scores
            assert answer.predicted == cold.predictions[u]
            assert answer.scores == [cold.scores[u][z]
                                     for z in answer.predicted]

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_k_truncation(self, grid, shards):
        service, _, _ = grid["sharded"][shards]
        cold = grid["cold"]
        u = 5
        answer = service.top_k(u, k=2)
        assert answer.predicted == cold.predictions[u][:2]
        assert len(answer.scores) == len(answer.predicted) <= 2

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_update_results_match_single_plane(self, grid, shards):
        """Owned phase-3b slices are disjoint and covering, so the per-update
        rescored counts summed across shards equal the unsharded counts."""
        _, ingests, removal = grid["sharded"][shards]
        for sharded_result, single_result in zip(ingests,
                                                 grid["single_ingests"]):
            assert sharded_result.added == single_result.added
            assert sharded_result.rescored == single_result.rescored
        assert removal.removed == grid["single_removal"].removed
        assert removal.rescored == grid["single_removal"].rescored
        assert removal.requested == 2
        assert len(removal.removed) == 2

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_stream_crossed_a_compaction(self, grid, shards):
        service, ingests, _ = grid["sharded"][shards]
        assert any(result.compacted for result in ingests)
        assert service.stats().compactions >= 1


class TestOperations:
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_stats_counters(self, grid, shards):
        service, ingests, _ = grid["sharded"][shards]
        stats = service.stats()
        assert stats.shards == shards
        assert stats.edges_ingested == sum(len(r.added) for r in ingests)
        assert stats.edges_removed == 2
        assert stats.updates_applied == len(ingests) + 1
        assert stats.requests_served > 0
        assert stats.batches_dispatched > 0
        assert stats.mean_batch_size >= 1.0
        assert stats.pending == 0

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_stage_stats_cover_the_pipeline(self, grid, shards):
        service, _, _ = grid["sharded"][shards]
        stages = service.stage_stats()
        assert set(stages) == {"dispatch", "shard_queue", "rescore", "reply"}
        # Per-shard recorders fold into one snapshot per stage.
        assert stages["shard_queue"]["servers"] == shards
        assert stages["rescore"]["servers"] == shards
        assert stages["dispatch"]["count"] > 0
        assert stages["shard_queue"]["count"] > 0
        assert stages["rescore"]["count"] > 0
        assert stages["reply"]["count"] > 0

    def test_burst_coalesces_into_batches(self, random_graph):
        """A submit burst must produce fewer dispatch flushes than requests
        (retried to keep the timing-dependent check deterministic)."""
        graph = random_graph(60, 3, 0.3, seed=31)
        with ShardedPredictorService(graph, CONFIG, shards=1,
                                     serving=SERVING,
                                     batch_max=16) as service:
            coalesced = False
            for _ in range(5):
                before = service.stats()
                futures = [service.submit_top_k(u % graph.num_vertices)
                           for u in range(256)]
                for future in futures:
                    future.result(timeout=60)
                after = service.stats()
                served = after.requests_served - before.requests_served
                batches = (after.batches_dispatched
                           - before.batches_dispatched)
                assert served == 256
                if batches < served:
                    coalesced = True
                    break
            assert coalesced, "no burst coalesced into multi-request batches"

    def test_validation_and_lifecycle_errors(self, random_graph):
        graph = random_graph(40, 3, 0.3, seed=33)
        with pytest.raises(ConfigurationError):
            ShardedPredictorService(graph, CONFIG, shards=0)
        with pytest.raises(ConfigurationError):
            ShardedPredictorService(graph, CONFIG, batch_max=0)
        service = ShardedPredictorService(graph, CONFIG, shards=1)
        with pytest.raises(ServingError):
            service.top_k(0)  # not started
        with service:
            with pytest.raises(VertexNotFoundError):
                service.top_k(graph.num_vertices + 5)
            with pytest.raises(GraphError):
                service.ingest([(0, -2)])
        with pytest.raises(ServingError):
            service.top_k(0)  # closed


class TestCrashSafety:
    def test_shard_crash_fails_pending_and_leaks_nothing(self, random_graph):
        graph = random_graph(60, 3, 0.3, seed=35)
        before = _shm_entries()
        service = ShardedPredictorService(graph, CONFIG, shards=2,
                                          serving=SERVING).start()
        try:
            assert service.top_k(0).vertex == 0
            # Simulate a SIGKILLed shard under live traffic.
            service._processes[0].kill()
            service._processes[0].join(timeout=10)
            with pytest.raises(ServingError):
                for u in range(graph.num_vertices):
                    service.top_k(u, timeout=30)
            with pytest.raises(ServingError):
                service.top_k(0)  # service is marked failed
        finally:
            service.close()
        assert _shm_entries() == before

    def test_clean_shutdown_leaks_nothing(self, random_graph):
        graph = random_graph(60, 3, 0.3, seed=37)
        before = _shm_entries()
        with ShardedPredictorService(graph, CONFIG, shards=2,
                                     serving=SERVING) as service:
            service.ingest([(0, 7)])
            service.top_k(0)
        assert _shm_entries() == before


class TestShardMap:
    def test_base_range_matches_partitioner(self, random_graph):
        graph = random_graph(80, 3, 0.3, seed=39)
        partition = partition_vertices(graph, 4, seed=0)
        shard_map = ShardMap(num_shards=4, seed=0,
                             base_assignment=partition.vertex_machine)
        vertices = np.arange(graph.num_vertices)
        np.testing.assert_array_equal(shard_map.owners(vertices),
                                      partition.vertex_machine)

    def test_grown_vertices_use_consistent_hash(self, random_graph):
        graph = random_graph(80, 3, 0.3, seed=39)
        partition = partition_vertices(graph, 4, seed=0)
        shard_map = ShardMap(num_shards=4, seed=0,
                             base_assignment=partition.vertex_machine)
        grown = np.arange(graph.num_vertices, graph.num_vertices + 50)
        owners = shard_map.owners(grown)
        assert ((owners >= 0) & (owners < 4)).all()
        # Scalar and vector paths agree.
        assert [shard_map.owner(int(v)) for v in grown] == owners.tolist()

    def test_target_filters_partition_the_vertices(self, random_graph):
        graph = random_graph(80, 3, 0.3, seed=39)
        partition = partition_vertices(graph, 3, seed=0)
        shard_map = ShardMap(num_shards=3, seed=0,
                             base_assignment=partition.vertex_machine)
        universe = np.arange(graph.num_vertices + 20)
        owned = [shard_map.target_filter(s)(universe) for s in range(3)]
        assert sum(part.size for part in owned) == universe.size
        np.testing.assert_array_equal(
            np.sort(np.concatenate(owned)), universe
        )
