"""GraphDelta: the merged overlay must be indistinguishable from a rebuild."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphError, VertexNotFoundError
from repro.graph.digraph import DiGraph
from repro.serving import GraphDelta


def _absent_edges(graph, count, seed):
    rng = np.random.default_rng(seed)
    edges, seen = [], set()
    while len(edges) < count:
        u = int(rng.integers(graph.num_vertices))
        v = int(rng.integers(graph.num_vertices))
        if u != v and (u, v) not in seen and not graph.has_edge(u, v):
            edges.append((u, v))
            seen.add((u, v))
    return edges


def _rebuild(delta: GraphDelta) -> DiGraph:
    src = [u for u, _ in delta.edges()]
    dst = [v for _, v in delta.edges()]
    return DiGraph(delta.num_vertices, src, dst)


class TestMergedView:
    def test_csr_matches_full_rebuild(self, random_graph):
        base = random_graph(120, 3, 0.4, seed=3)
        delta = GraphDelta(base)
        delta.add_edges(_absent_edges(base, 40, seed=5))
        indptr, indices = delta.csr_out_adjacency()
        want_indptr, want_indices = _rebuild(delta).csr_out_adjacency()
        np.testing.assert_array_equal(indptr, want_indptr)
        np.testing.assert_array_equal(indices, want_indices)

    def test_csr_matches_compacted_self(self, random_graph):
        base = random_graph(120, 3, 0.4, seed=3)
        delta = GraphDelta(base)
        delta.add_edges(_absent_edges(base, 25, seed=6))
        indptr, indices = delta.csr_out_adjacency()
        compacted = delta.compact()
        assert delta.num_delta_edges == 0
        want_indptr, want_indices = compacted.csr_out_adjacency()
        np.testing.assert_array_equal(indptr, want_indptr)
        np.testing.assert_array_equal(indices, want_indices)

    def test_neighbors_match_compacted(self, random_graph):
        base = random_graph(80, 3, 0.3, seed=9)
        delta = GraphDelta(base)
        delta.add_edges(_absent_edges(base, 30, seed=10))
        rebuilt = _rebuild(delta)
        for u in range(delta.num_vertices):
            np.testing.assert_array_equal(
                delta.out_neighbors(u), rebuilt.out_neighbors(u)
            )
            np.testing.assert_array_equal(
                np.sort(delta.in_neighbors(u)),
                np.sort(rebuilt.in_neighbors(u)),
            )
            assert delta.out_degree(u) == rebuilt.out_degree(u)
            assert delta.in_degree(u) == rebuilt.in_degree(u)

    def test_base_duplicate_edges_preserved(self):
        # The kernel's GAS fold walks raw adjacency, so base duplicates
        # must survive the merge even though ingest dedupes.
        base = DiGraph(3, [0, 0, 1], [1, 1, 2])
        delta = GraphDelta(base)
        assert delta.add_edge(0, 2)
        np.testing.assert_array_equal(delta.out_neighbors(0), [1, 1, 2])
        indptr, indices = delta.csr_out_adjacency()
        np.testing.assert_array_equal(indices[indptr[0]:indptr[1]], [1, 1, 2])


class TestIngest:
    def test_duplicate_edge_is_noop(self, triangle_graph):
        delta = GraphDelta(triangle_graph)
        assert not delta.add_edge(0, 1)  # base edge
        assert delta.add_edge(0, 2)
        assert not delta.add_edge(0, 2)  # delta edge
        assert delta.num_delta_edges == 1
        assert delta.num_edges == triangle_graph.num_edges + 1

    def test_add_edges_returns_only_added(self, triangle_graph):
        delta = GraphDelta(triangle_graph)
        added = delta.add_edges([(0, 1), (0, 2), (0, 2), (2, 1)])
        assert added == [(0, 2), (2, 1)]
        assert delta.delta_edges() == [(0, 2), (2, 1)]

    def test_growth(self, triangle_graph):
        delta = GraphDelta(triangle_graph)
        assert delta.add_edge(1, 6)
        assert delta.num_vertices == 7
        assert delta.has_edge(1, 6)
        np.testing.assert_array_equal(delta.out_neighbors(6), [])
        np.testing.assert_array_equal(delta.in_neighbors(6), [1])
        indptr, _ = delta.csr_out_adjacency()
        assert indptr.size == delta.num_vertices + 1

    def test_negative_endpoint_rejected(self, triangle_graph):
        delta = GraphDelta(triangle_graph)
        with pytest.raises(GraphError):
            delta.add_edge(-1, 2)
        with pytest.raises(GraphError):
            delta.add_edge(0, -3)

    def test_unknown_vertex_rejected_on_reads(self, triangle_graph):
        delta = GraphDelta(triangle_graph)
        with pytest.raises(VertexNotFoundError):
            delta.has_edge(0, 99)
        with pytest.raises(VertexNotFoundError):
            delta.out_neighbors(99)
        with pytest.raises(VertexNotFoundError):
            delta.in_neighbors(-1)


class TestCompaction:
    def test_compact_swaps_base_and_clears_delta(self, random_graph):
        base = random_graph(60, 3, 0.3, seed=2)
        delta = GraphDelta(base)
        stream = _absent_edges(base, 10, seed=4)
        delta.add_edges(stream)
        compacted = delta.compact()
        assert delta.base is compacted
        assert delta.num_delta_edges == 0
        assert compacted.num_edges == base.num_edges + len(stream)
        # Edge stream can continue after compaction.
        more = _absent_edges(compacted, 5, seed=8)
        assert delta.add_edges(more) == more
        assert delta.num_delta_edges == len(more)

    def test_compact_preserves_merged_view(self, random_graph):
        base = random_graph(60, 3, 0.3, seed=2)
        delta = GraphDelta(base)
        delta.add_edges(_absent_edges(base, 10, seed=4))
        before = delta.csr_out_adjacency()
        delta.compact()
        after = delta.csr_out_adjacency()
        np.testing.assert_array_equal(before[0], after[0])
        np.testing.assert_array_equal(before[1], after[1])


class TestRemoval:
    def _unique_base_edge(self, graph):
        src, dst = graph.edge_arrays()
        pairs = list(zip(src.tolist(), dst.tolist()))
        counts: dict[tuple[int, int], int] = {}
        for pair in pairs:
            counts[pair] = counts.get(pair, 0) + 1
        return next(pair for pair in pairs if counts[pair] == 1)

    def test_delta_edge_removed_physically(self, triangle_graph):
        delta = GraphDelta(triangle_graph)
        assert delta.add_edge(0, 2)
        assert delta.remove_edge(0, 2)
        assert delta.num_delta_edges == 0
        assert delta.num_removed_edges == 0
        assert not delta.has_edge(0, 2)
        assert delta.num_edges == triangle_graph.num_edges

    def test_base_edge_tombstoned(self, random_graph):
        base = random_graph(60, 3, 0.3, seed=2)
        u, v = self._unique_base_edge(base)
        delta = GraphDelta(base)
        assert delta.remove_edge(u, v)
        assert delta.num_removed_edges == 1
        assert not delta.has_edge(u, v)
        assert delta.num_edges == base.num_edges - 1
        assert v not in delta.out_neighbors(u).tolist()
        assert u not in delta.in_neighbors(v).tolist()
        assert delta.out_degree(u) == base.out_degree(u) - 1
        assert delta.in_degree(v) == base.in_degree(v) - 1
        # Removing an edge that no longer survives is a no-op.
        assert not delta.remove_edge(u, v)

    def test_merged_view_matches_rebuild_after_removals(self, random_graph):
        base = random_graph(80, 3, 0.3, seed=9)
        delta = GraphDelta(base)
        added = delta.add_edges(_absent_edges(base, 12, seed=10))
        removed = [added[3], self._unique_base_edge(base)]
        assert delta.remove_edges(removed) == removed
        rebuilt = _rebuild(delta)
        indptr, indices = delta.csr_out_adjacency()
        want_indptr, want_indices = rebuilt.csr_out_adjacency()
        np.testing.assert_array_equal(indptr, want_indptr)
        np.testing.assert_array_equal(indices, want_indices)
        for u in range(delta.num_vertices):
            np.testing.assert_array_equal(delta.out_neighbors(u),
                                          rebuilt.out_neighbors(u))
            assert delta.in_degree(u) == rebuilt.in_degree(u)

    def test_duplicate_base_edge_removed_one_occurrence_at_a_time(self):
        base = DiGraph(3, [0, 0, 1], [1, 1, 2])
        delta = GraphDelta(base)
        assert delta.remove_edge(0, 1)
        assert delta.has_edge(0, 1)  # one copy survives
        np.testing.assert_array_equal(delta.out_neighbors(0), [1])
        assert delta.remove_edge(0, 1)
        assert not delta.has_edge(0, 1)
        assert not delta.remove_edge(0, 1)
        assert delta.num_edges == 1

    def test_readd_after_removal(self, random_graph):
        base = random_graph(60, 3, 0.3, seed=2)
        u, v = self._unique_base_edge(base)
        delta = GraphDelta(base)
        assert delta.remove_edge(u, v)
        assert delta.add_edge(u, v)
        assert delta.has_edge(u, v)
        assert delta.num_edges == base.num_edges

    def test_compact_folds_out_tombstones(self, random_graph):
        base = random_graph(80, 3, 0.3, seed=9)
        delta = GraphDelta(base)
        added = delta.add_edges(_absent_edges(base, 8, seed=10))
        removed = [added[0], self._unique_base_edge(base)]
        delta.remove_edges(removed)
        before = delta.csr_out_adjacency()
        compacted = delta.compact()
        assert delta.num_delta_edges == 0
        assert delta.num_removed_edges == 0
        for u, v in removed:
            assert not compacted.has_edge(u, v)
        after = compacted.csr_out_adjacency()
        np.testing.assert_array_equal(before[0], after[0])
        np.testing.assert_array_equal(before[1], after[1])

    def test_invalid_removals(self, triangle_graph):
        delta = GraphDelta(triangle_graph)
        with pytest.raises(GraphError):
            delta.remove_edge(-1, 0)
        assert not delta.remove_edge(0, 99)  # out of range: nothing to do
        assert not delta.remove_edge(0, 2)  # absent edge
