"""PredictorService: lifecycle, queueing shape, caching, and live updates."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.errors import ConfigurationError, ServingError
from repro.serving import (
    IncrementalIndex,
    PredictorService,
    ServingConfig,
)
from repro.snaple.config import SnapleConfig


@pytest.fixture(scope="module")
def config() -> SnapleConfig:
    return SnapleConfig.paper_default(seed=3, k_local=6)


def _absent_edge(graph, seed=0):
    rng = np.random.default_rng(seed)
    while True:
        u = int(rng.integers(graph.num_vertices))
        v = int(rng.integers(graph.num_vertices))
        if u != v and not graph.has_edge(u, v):
            return u, v


class TestConfigValidation:
    @pytest.mark.parametrize("kwargs", [
        {"workers": 0},
        {"workers": -2},
        {"queue_bound": 0},
        {"compact_every": 0},
    ])
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            ServingConfig(**kwargs)

    def test_compaction_can_be_disabled(self):
        assert ServingConfig(compact_every=None).compact_every is None


class TestLifecycle:
    def test_submit_before_start_raises(self, small_social_graph, config):
        service = PredictorService(small_social_graph, config)
        with pytest.raises(ServingError):
            service.submit_top_k(0)
        with pytest.raises(ServingError):
            service.report()

    def test_double_start_raises(self, small_social_graph, config):
        service = PredictorService(small_social_graph, config)
        service.start()
        try:
            with pytest.raises(ServingError):
                service.start()
        finally:
            service.stop()

    def test_submit_after_stop_raises(self, small_social_graph, config):
        with PredictorService(small_social_graph, config) as service:
            assert service.top_k(0) is not None
        with pytest.raises(ServingError):
            service.submit_top_k(0)
        service.stop()  # idempotent

    def test_worker_threads_join_on_stop(self, small_social_graph, config):
        serving = ServingConfig(workers=3)
        with PredictorService(small_social_graph, config,
                              serving=serving) as service:
            assert len(service._threads) == 3
        assert all(not thread.is_alive() for thread in service._threads)


class TestQueries:
    def test_top_k_matches_index(self, small_social_graph, config):
        index = IncrementalIndex(small_social_graph, config)
        with PredictorService(small_social_graph, config) as service:
            for u in (0, 5, 17, 123):
                answer = service.top_k(u)
                assert answer.vertex == u
                assert answer.predicted == index.predictions(u)
                assert answer.scores == index.prediction_scores(u)

    def test_k_slicing(self, small_social_graph, config):
        with PredictorService(small_social_graph, config) as service:
            subject = next(u for u in range(service.num_vertices)
                           if len(service.top_k(u).predicted) >= 2)
            full = service.top_k(subject)
            sliced = service.top_k(subject, k=1)
            assert sliced.predicted == full.predicted[:1]
            assert sliced.scores == full.scores[:1]

    def test_unknown_vertex_surfaces_through_future(self, small_social_graph,
                                                    config):
        from repro.errors import VertexNotFoundError
        with PredictorService(small_social_graph, config) as service:
            with pytest.raises(VertexNotFoundError):
                service.top_k(service.num_vertices + 5)

    def test_result_cache_counters(self, small_social_graph, config):
        with PredictorService(small_social_graph, config) as service:
            first = service.top_k(7)
            again = service.top_k(7)
            assert not first.from_cache
            assert again.from_cache
            assert (again.predicted, again.scores) == (first.predicted,
                                                       first.scores)
            stats = service.stats()
            assert stats.cache_hits == 1
            assert stats.cache_misses == 1

    def test_result_cache_can_be_disabled(self, small_social_graph, config):
        serving = ServingConfig(result_cache=False)
        with PredictorService(small_social_graph, config,
                              serving=serving) as service:
            service.top_k(7)
            assert not service.top_k(7).from_cache
            assert service.stats().cache_hits == 0


class TestIngest:
    def test_ingest_changes_the_answer(self, small_social_graph, config):
        with PredictorService(small_social_graph, config) as service:
            subject = next(u for u in range(service.num_vertices)
                           if service.top_k(u).predicted)
            before = service.top_k(subject)
            outcome = service.ingest_edge(subject, before.predicted[0])
            assert outcome.added == [(subject, before.predicted[0])]
            assert outcome.rescored > 0
            after = service.top_k(subject)
            # The ingested target is now a real neighbor: no longer a
            # candidate, so the answer must change.
            assert not after.from_cache
            assert after.predicted != before.predicted
            assert before.predicted[0] not in after.predicted

    def test_ingest_invalidates_only_rescored_entries(self, small_social_graph,
                                                      config):
        with PredictorService(small_social_graph, config) as service:
            u, v = _absent_edge(small_social_graph, seed=1)
            # Warm the result cache for every vertex, then ingest.
            for w in range(service.num_vertices):
                service.top_k(w)
            outcome = service.ingest_edge(u, v)
            assert 0 < outcome.rescored < service.num_vertices
            # The edge source was rescored: recomputed on next query.
            assert not service.top_k(u).from_cache
            # Entries outside the dirty region survive the ingest.
            hits = sum(service.top_k(w).from_cache
                       for w in range(service.num_vertices))
            assert hits >= service.num_vertices - outcome.rescored

    def test_duplicate_ingest_reports_zero_added(self, small_social_graph,
                                                 config):
        with PredictorService(small_social_graph, config) as service:
            u, v = _absent_edge(small_social_graph, seed=2)
            assert service.ingest_edge(u, v).added == [(u, v)]
            repeat = service.ingest_edge(u, v)
            assert repeat.requested == 1
            assert repeat.added == []
            assert repeat.rescored == 0

    def test_compaction_cadence(self, small_social_graph, config):
        serving = ServingConfig(workers=1, compact_every=2)
        with PredictorService(small_social_graph, config,
                              serving=serving) as service:
            rng = np.random.default_rng(3)
            compactions = 0
            added = 0
            while added < 6:
                u = int(rng.integers(service.num_vertices))
                v = int(rng.integers(service.num_vertices))
                if u == v:
                    continue
                outcome = service.ingest_edge(u, v)
                added += len(outcome.added)
                compactions += int(outcome.compacted)
            assert compactions == service.stats().compactions
            assert compactions >= 2
            assert service.stats().delta_edges < 2


class TestQueueBound:
    def test_full_queue_times_out_with_serving_error(self, small_social_graph,
                                                     config):
        serving = ServingConfig(workers=1, queue_bound=1)
        with PredictorService(small_social_graph, config,
                              serving=serving) as service:
            release = threading.Event()
            entered = threading.Event()

            def hold_write():
                with service._lock.write():
                    entered.set()
                    release.wait()

            holder = threading.Thread(target=hold_write)
            holder.start()
            try:
                assert entered.wait(5)
                # The single worker picks this up and blocks on the read
                # side of the lock...
                blocked = service.submit_top_k(0)
                # ...this one fills the only queue slot...
                queued = service.submit_top_k(1)
                # ...so the next submission cannot enqueue within the
                # timeout and must surface the bound as a ServingError.
                with pytest.raises(ServingError):
                    service.submit_top_k(2, timeout=0.05)
            finally:
                release.set()
                holder.join()
            assert blocked.result(5).vertex == 0
            assert queued.result(5).vertex == 1


class TestConcurrency:
    def test_concurrent_queries_and_ingests_stay_exact(self,
                                                       small_social_graph,
                                                       config):
        from repro.graph.digraph import DiGraph

        serving = ServingConfig(workers=4, compact_every=3)
        stream, seen = [], set()
        rng = np.random.default_rng(7)
        while len(stream) < 10:
            u = int(rng.integers(small_social_graph.num_vertices))
            v = int(rng.integers(small_social_graph.num_vertices))
            if (u != v and (u, v) not in seen
                    and not small_social_graph.has_edge(u, v)):
                stream.append((u, v))
                seen.add((u, v))
        src, dst = small_social_graph.edge_arrays()
        merged = DiGraph(
            small_social_graph.num_vertices,
            np.concatenate([src, np.asarray([u for u, _ in stream])]),
            np.concatenate([dst, np.asarray([v for _, v in stream])]),
        )
        with PredictorService(small_social_graph, config,
                              serving=serving) as service:
            query_futures = [service.submit_top_k(u % service.num_vertices)
                             for u in range(40)]
            ingest_futures = [service.submit_ingest([edge])
                              for edge in stream]
            for future in query_futures + ingest_futures:
                future.result(30)
            final = IncrementalIndex(merged, config)
            # After every job drains, served answers equal a cold build
            # on the merged graph.
            for u in (0, 3, stream[0][0]):
                answer = service.top_k(u)
                assert answer.predicted == final.predictions(u)
                assert answer.scores == final.prediction_scores(u)


class TestStatsAndReport:
    def test_stats_snapshot(self, small_social_graph, config):
        with PredictorService(small_social_graph, config) as service:
            service.top_k(0)
            service.top_k(0)
            u, v = _absent_edge(small_social_graph, seed=4)
            service.ingest_edge(u, v)
            stats = service.stats()
            assert stats.requests_served == 2
            assert stats.edges_ingested == 1
            assert stats.dirty_vertices_rescored > 0
            assert stats.workers == service.serving_config.workers

    def test_report_shape(self, small_social_graph, config):
        with PredictorService(small_social_graph, config) as service:
            service.top_k(5)
            report = service.report()
            assert report.backend == "serving"
            assert report.workers == service.serving_config.workers
            assert report.wall_clock_seconds > 0
            assert len(report.predictions) == service.num_vertices
            assert report.extra["requests_served"] == 1.0
            index = IncrementalIndex(small_social_graph, config)
            assert report.predictions == index.all_predictions()
            assert report.scores[5] == index.scores(5)
