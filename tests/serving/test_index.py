"""IncrementalIndex: dirty-region rescoring stays exact and bounded."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import VertexNotFoundError
from repro.graph.digraph import DiGraph
from repro.serving import GraphDelta, IncrementalIndex
from repro.snaple.config import SnapleConfig


def _absent_edges(graph, count, seed):
    rng = np.random.default_rng(seed)
    edges, seen = [], set()
    while len(edges) < count:
        u = int(rng.integers(graph.num_vertices))
        v = int(rng.integers(graph.num_vertices))
        if u != v and (u, v) not in seen and not graph.has_edge(u, v):
            edges.append((u, v))
            seen.add((u, v))
    return edges


def _final_graph(base: DiGraph, stream) -> DiGraph:
    src, dst = base.edge_arrays()
    return DiGraph(
        max(base.num_vertices, max((max(u, v) for u, v in stream),
                                   default=-1) + 1),
        np.concatenate([src, np.asarray([u for u, _ in stream])]),
        np.concatenate([dst, np.asarray([v for _, v in stream])]),
    )


def _assert_same_state(index: IncrementalIndex, other: IncrementalIndex):
    assert index.all_predictions() == other.all_predictions()
    for u in range(index.num_vertices):
        assert index.scores(u) == other.scores(u)


@pytest.fixture(scope="module")
def config() -> SnapleConfig:
    return SnapleConfig.paper_default(seed=3, k_local=6)


class TestIncrementalEqualsCold:
    def test_one_edge_at_a_time(self, random_graph, config):
        base = random_graph(90, 3, 0.3, seed=7)
        stream = _absent_edges(base, 12, seed=1)
        index = IncrementalIndex(base, config)
        for edge in stream:
            index.apply_edges([edge])
        _assert_same_state(index, IncrementalIndex(_final_graph(base, stream),
                                                   config))

    def test_batched_with_compaction(self, random_graph, config):
        base = random_graph(90, 3, 0.3, seed=7)
        stream = _absent_edges(base, 12, seed=2)
        index = IncrementalIndex(base, config)
        index.apply_edges(stream[:5])
        index.compact()
        assert index.graph.num_delta_edges == 0
        index.apply_edges(stream[5:])
        _assert_same_state(index, IncrementalIndex(_final_graph(base, stream),
                                                   config))

    def test_truncating_config(self, random_graph):
        config = SnapleConfig.paper_default(seed=5, k=4, k_local=3,
                                            truncation_threshold=4)
        base = random_graph(90, 3, 0.3, seed=7)
        stream = _absent_edges(base, 8, seed=3)
        index = IncrementalIndex(base, config)
        for edge in stream:
            index.apply_edges([edge])
        _assert_same_state(index, IncrementalIndex(_final_graph(base, stream),
                                                   config))

    def test_without_pair_cache(self, random_graph, config):
        base = random_graph(60, 3, 0.3, seed=8)
        stream = _absent_edges(base, 6, seed=4)
        cached = IncrementalIndex(base, config)
        uncached = IncrementalIndex(GraphDelta(base), config,
                                    use_pair_cache=False)
        assert uncached.pair_cache is None
        for edge in stream:
            cached.apply_edges([edge])
            uncached.apply_edges([edge])
        _assert_same_state(cached, uncached)


class TestDirtyTracking:
    def test_rescored_covers_sources(self, random_graph, config):
        base = random_graph(90, 3, 0.3, seed=7)
        index = IncrementalIndex(base, config)
        (u, v), = _absent_edges(base, 1, seed=5)
        update = index.apply_edges([(u, v)])
        assert update.added == [(u, v)]
        assert u in update.gamma_dirty.tolist()
        rescored = set(update.rescored.tolist())
        assert set(update.gamma_dirty.tolist()) <= rescored
        # The dirty closure stays a region, not the whole graph.
        assert update.num_rescored < index.num_vertices
        assert index.rescored_total == update.num_rescored

    def test_duplicate_only_batch_is_noop(self, random_graph, config):
        base = random_graph(60, 3, 0.3, seed=8)
        index = IncrementalIndex(base, config)
        before = index.all_predictions()
        src, dst = base.edge_arrays()
        update = index.apply_edges([(int(src[0]), int(dst[0]))])
        assert update.added == []
        assert update.num_rescored == 0
        assert index.all_predictions() == before

    def test_growth_and_bad_vertex(self, random_graph, config):
        base = random_graph(60, 3, 0.3, seed=8)
        index = IncrementalIndex(base, config)
        with pytest.raises(VertexNotFoundError):
            index.predictions(base.num_vertices)
        index.apply_edges([(0, base.num_vertices + 2)])
        assert index.num_vertices == base.num_vertices + 3
        assert index.predictions(base.num_vertices + 2) == []


def _final_graph_after_removals(base, stream, removals):
    src, dst = base.edge_arrays()
    edges = list(zip(src.tolist(), dst.tolist())) + list(stream)
    for edge in removals:
        edges.remove(edge)
    num_vertices = max(
        base.num_vertices, max(max(u, v) for u, v in edges) + 1
    )
    return DiGraph(num_vertices, [u for u, _ in edges],
                   [v for _, v in edges])


class TestRemovals:
    def test_removal_rescoring_equals_cold(self, random_graph, config):
        """Dirty-region parity for deletions: the incrementally maintained
        index after remove == a cold index on the post-removal graph."""
        base = random_graph(90, 3, 0.3, seed=7)
        stream = _absent_edges(base, 10, seed=1)
        index = IncrementalIndex(base, config)
        index.apply_edges(stream)
        src, dst = base.edge_arrays()
        removals = [stream[2], (int(src[0]), int(dst[0]))]
        update = index.apply_removals(removals)
        assert update.removed == removals
        assert update.num_rescored > 0
        cold = IncrementalIndex(
            _final_graph_after_removals(base, stream, removals), config
        )
        _assert_same_state(index, cold)

    def test_removal_across_compaction(self, random_graph, config):
        base = random_graph(90, 3, 0.3, seed=7)
        stream = _absent_edges(base, 8, seed=2)
        index = IncrementalIndex(base, config)
        index.apply_edges(stream)
        index.compact()
        # The streamed edges are base edges now: tombstone path.
        removals = [stream[1], stream[5]]
        index.apply_removals(removals)
        index.compact()
        cold = IncrementalIndex(
            _final_graph_after_removals(base, stream, removals), config
        )
        _assert_same_state(index, cold)

    def test_absent_removal_is_noop(self, random_graph, config):
        base = random_graph(60, 3, 0.3, seed=8)
        index = IncrementalIndex(base, config)
        before = index.all_predictions()
        (absent,) = _absent_edges(base, 1, seed=9)
        update = index.apply_removals([absent])
        assert update.removed == []
        assert update.num_rescored == 0
        assert index.all_predictions() == before

    def test_removal_dirty_closure_covers_sources(self, random_graph,
                                                  config):
        base = random_graph(90, 3, 0.3, seed=7)
        index = IncrementalIndex(base, config)
        src, dst = base.edge_arrays()
        u, v = int(src[4]), int(dst[4])
        update = index.apply_removals([(u, v)])
        assert u in update.gamma_dirty.tolist()
        assert set(update.gamma_dirty.tolist()) <= set(
            update.rescored.tolist()
        )
        assert update.num_rescored < index.num_vertices


class TestTargetFilter:
    def test_filtered_indexes_tile_the_unfiltered_one(self, random_graph,
                                                      config):
        """Phase 3b restricted to disjoint covering slices reproduces the
        unfiltered index exactly on each slice — the sharding invariant."""
        base = random_graph(70, 3, 0.3, seed=12)
        stream = _absent_edges(base, 6, seed=13)
        full = IncrementalIndex(base, config)
        halves = [
            IncrementalIndex(
                base, config,
                target_filter=lambda t, parity=parity:
                    t[np.asarray(t) % 2 == parity],
            )
            for parity in (0, 1)
        ]
        updates = [full.apply_edges(stream)]
        half_rescored = 0
        for half in halves:
            half_rescored += half.apply_edges(stream).num_rescored
        assert half_rescored == updates[0].num_rescored
        for u in range(full.num_vertices):
            owner = halves[u % 2]
            assert owner.predictions(u) == full.predictions(u)
            assert owner.scores(u) == full.scores(u)


class TestPairCache:
    def test_hits_accumulate_and_invalidate(self, random_graph, config):
        base = random_graph(90, 3, 0.3, seed=7)
        index = IncrementalIndex(base, config)
        cache = index.pair_cache
        assert cache.misses > 0 and cache.hits == 0  # cold build
        cold_misses = cache.misses
        (edge,) = _absent_edges(base, 1, seed=6)
        index.apply_edges([edge])
        # The rescored region re-reads mostly unchanged pairs.
        assert cache.hits > 0
        assert cache.invalidated > 0
        assert cache.misses - cold_misses < cold_misses

    def test_scores_view_matches_scores(self, random_graph, config):
        base = random_graph(60, 3, 0.3, seed=8)
        index = IncrementalIndex(base, config)
        view = index.scores_view()
        assert len(view) == index.num_vertices
        assert view[3] == index.scores(3)
        with pytest.raises(KeyError):
            view[index.num_vertices]
