"""IncrementalIndex: dirty-region rescoring stays exact and bounded."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import VertexNotFoundError
from repro.graph.digraph import DiGraph
from repro.serving import GraphDelta, IncrementalIndex
from repro.snaple.config import SnapleConfig


def _absent_edges(graph, count, seed):
    rng = np.random.default_rng(seed)
    edges, seen = [], set()
    while len(edges) < count:
        u = int(rng.integers(graph.num_vertices))
        v = int(rng.integers(graph.num_vertices))
        if u != v and (u, v) not in seen and not graph.has_edge(u, v):
            edges.append((u, v))
            seen.add((u, v))
    return edges


def _final_graph(base: DiGraph, stream) -> DiGraph:
    src, dst = base.edge_arrays()
    return DiGraph(
        max(base.num_vertices, max((max(u, v) for u, v in stream),
                                   default=-1) + 1),
        np.concatenate([src, np.asarray([u for u, _ in stream])]),
        np.concatenate([dst, np.asarray([v for _, v in stream])]),
    )


def _assert_same_state(index: IncrementalIndex, other: IncrementalIndex):
    assert index.all_predictions() == other.all_predictions()
    for u in range(index.num_vertices):
        assert index.scores(u) == other.scores(u)


@pytest.fixture(scope="module")
def config() -> SnapleConfig:
    return SnapleConfig.paper_default(seed=3, k_local=6)


class TestIncrementalEqualsCold:
    def test_one_edge_at_a_time(self, random_graph, config):
        base = random_graph(90, 3, 0.3, seed=7)
        stream = _absent_edges(base, 12, seed=1)
        index = IncrementalIndex(base, config)
        for edge in stream:
            index.apply_edges([edge])
        _assert_same_state(index, IncrementalIndex(_final_graph(base, stream),
                                                   config))

    def test_batched_with_compaction(self, random_graph, config):
        base = random_graph(90, 3, 0.3, seed=7)
        stream = _absent_edges(base, 12, seed=2)
        index = IncrementalIndex(base, config)
        index.apply_edges(stream[:5])
        index.compact()
        assert index.graph.num_delta_edges == 0
        index.apply_edges(stream[5:])
        _assert_same_state(index, IncrementalIndex(_final_graph(base, stream),
                                                   config))

    def test_truncating_config(self, random_graph):
        config = SnapleConfig.paper_default(seed=5, k=4, k_local=3,
                                            truncation_threshold=4)
        base = random_graph(90, 3, 0.3, seed=7)
        stream = _absent_edges(base, 8, seed=3)
        index = IncrementalIndex(base, config)
        for edge in stream:
            index.apply_edges([edge])
        _assert_same_state(index, IncrementalIndex(_final_graph(base, stream),
                                                   config))

    def test_without_pair_cache(self, random_graph, config):
        base = random_graph(60, 3, 0.3, seed=8)
        stream = _absent_edges(base, 6, seed=4)
        cached = IncrementalIndex(base, config)
        uncached = IncrementalIndex(GraphDelta(base), config,
                                    use_pair_cache=False)
        assert uncached.pair_cache is None
        for edge in stream:
            cached.apply_edges([edge])
            uncached.apply_edges([edge])
        _assert_same_state(cached, uncached)


class TestDirtyTracking:
    def test_rescored_covers_sources(self, random_graph, config):
        base = random_graph(90, 3, 0.3, seed=7)
        index = IncrementalIndex(base, config)
        (u, v), = _absent_edges(base, 1, seed=5)
        update = index.apply_edges([(u, v)])
        assert update.added == [(u, v)]
        assert u in update.gamma_dirty.tolist()
        rescored = set(update.rescored.tolist())
        assert set(update.gamma_dirty.tolist()) <= rescored
        # The dirty closure stays a region, not the whole graph.
        assert update.num_rescored < index.num_vertices
        assert index.rescored_total == update.num_rescored

    def test_duplicate_only_batch_is_noop(self, random_graph, config):
        base = random_graph(60, 3, 0.3, seed=8)
        index = IncrementalIndex(base, config)
        before = index.all_predictions()
        src, dst = base.edge_arrays()
        update = index.apply_edges([(int(src[0]), int(dst[0]))])
        assert update.added == []
        assert update.num_rescored == 0
        assert index.all_predictions() == before

    def test_growth_and_bad_vertex(self, random_graph, config):
        base = random_graph(60, 3, 0.3, seed=8)
        index = IncrementalIndex(base, config)
        with pytest.raises(VertexNotFoundError):
            index.predictions(base.num_vertices)
        index.apply_edges([(0, base.num_vertices + 2)])
        assert index.num_vertices == base.num_vertices + 3
        assert index.predictions(base.num_vertices + 2) == []


class TestPairCache:
    def test_hits_accumulate_and_invalidate(self, random_graph, config):
        base = random_graph(90, 3, 0.3, seed=7)
        index = IncrementalIndex(base, config)
        cache = index.pair_cache
        assert cache.misses > 0 and cache.hits == 0  # cold build
        cold_misses = cache.misses
        (edge,) = _absent_edges(base, 1, seed=6)
        index.apply_edges([edge])
        # The rescored region re-reads mostly unchanged pairs.
        assert cache.hits > 0
        assert cache.invalidated > 0
        assert cache.misses - cold_misses < cold_misses

    def test_scores_view_matches_scores(self, random_graph, config):
        base = random_graph(60, 3, 0.3, seed=8)
        index = IncrementalIndex(base, config)
        view = index.scores_view()
        assert len(view) == index.num_vertices
        assert view[3] == index.scores(3)
        with pytest.raises(KeyError):
            view[index.num_vertices]
