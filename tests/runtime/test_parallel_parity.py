"""Serial/parallel parity harness for the shared-nothing execution layer.

For every backend advertising :attr:`BackendCapabilities.parallel` these
tests assert that ``workers=1`` and ``workers=N`` produce *identical*
predictions, candidate scores (bit-exact floats) and superstep counts on
seeded random graphs — the paper's scale-out claim requires that
distribution never changes the answer.  They also pin the accounting
invariant: a report's totals must equal the sum of its per-partition
reports, for serial and parallel runs alike.

The CI parity job sets ``SNAPLE_PARITY_WORKERS`` to restrict the worker
counts exercised (e.g. ``2``); locally both 2 and 4 run.
"""

from __future__ import annotations

import os

import pytest

from repro.errors import ConfigurationError
from repro.gas.cluster import TYPE_I, cluster_of
from repro.gas.partition import GreedyVertexCut
from repro.runtime import available_backends, backend_capabilities, get_backend
from repro.runtime.report import RunReport
from repro.snaple.config import SnapleConfig
from repro.snaple.predictor import SnapleLinkPredictor


def _parity_worker_counts() -> list[int]:
    override = os.environ.get("SNAPLE_PARITY_WORKERS")
    if override:
        return [int(value) for value in override.split(",")]
    return [2, 4]


PARITY_WORKERS = _parity_worker_counts()

PARALLEL_BACKENDS = [
    name for name in available_backends()
    if backend_capabilities(name).parallel
]

SERIAL_BACKENDS = [
    name for name in available_backends()
    if not backend_capabilities(name).parallel
]


@pytest.fixture(scope="module")
def small_graph(random_graph):
    """The 150-vertex parity graph, shared session-wide via random_graph."""
    return random_graph(150, 3, 0.3, seed=11)


def assert_reports_identical(left: RunReport, right: RunReport) -> None:
    """Predictions, scores (bit-exact) and superstep counts must match."""
    assert left.predictions == right.predictions
    assert left.scores == right.scores
    assert left.supersteps == right.supersteps


def assert_partition_totals(report: RunReport) -> None:
    """The merged report's totals equal the sum of its partition reports."""
    assert report.partition_reports, "report carries no partition accounting"
    assert len(report.predictions) == sum(
        partition.num_predictions for partition in report.partition_reports
    )
    assert sum(len(targets) for targets in report.predictions.values()) == sum(
        partition.num_predicted_edges
        for partition in report.partition_reports
    )
    assert report.per_partition_seconds == [
        partition.compute_seconds for partition in report.partition_reports
    ]
    for partition in report.partition_reports:
        assert partition.num_predictions <= partition.num_vertices
        assert partition.compute_seconds >= 0.0
        assert partition.shipped_bytes >= 0


class TestWorkersParity:
    """workers=1 and workers=N must be prediction-identical."""

    @pytest.mark.parametrize("backend", PARALLEL_BACKENDS)
    @pytest.mark.parametrize("workers", PARITY_WORKERS)
    def test_parity_on_seeded_graph(self, backend, workers, small_graph):
        graph = small_graph
        config = SnapleConfig.paper_default(seed=3, k_local=10)
        predictor = SnapleLinkPredictor(config)
        baseline = predictor.predict(graph, backend=backend, workers=1)
        run = predictor.predict(graph, backend=backend, workers=workers)
        assert_reports_identical(baseline, run)
        assert run.workers == workers
        assert len(run.per_partition_seconds) == workers
        assert run.sync_overhead_seconds is not None
        assert run.sync_overhead_seconds >= 0.0

    @pytest.mark.parametrize("backend", PARALLEL_BACKENDS)
    def test_parity_with_truncation_randomness(self, backend, random_graph):
        """Per-vertex RNG keeps runs identical even when truncation fires."""
        graph = random_graph(200, 4, 0.3, seed=7)
        config = SnapleConfig.paper_default(
            seed=9, k_local=6, truncation_threshold=5
        )
        predictor = SnapleLinkPredictor(config)
        baseline = predictor.predict(graph, backend=backend, workers=1)
        run = predictor.predict(graph, backend=backend,
                                workers=max(PARITY_WORKERS))
        assert_reports_identical(baseline, run)

    @pytest.mark.slow
    def test_gas_parity_on_1k_vertex_graph(self, random_graph):
        """The acceptance graph: 1k vertices, workers=4 == workers=1."""
        graph = random_graph(1000, 3, 0.2, seed=42)
        config = SnapleConfig.paper_default(seed=42, k_local=10)
        predictor = SnapleLinkPredictor(config)
        baseline = predictor.predict(graph, backend="gas", workers=1)
        run = predictor.predict(graph, backend="gas", workers=4)
        assert_reports_identical(baseline, run)
        assert run.predictions  # non-degenerate

    @pytest.mark.parametrize("backend", PARALLEL_BACKENDS)
    def test_serial_matches_parallel_without_randomness(self, backend,
                                                       random_graph):
        """When no truncation randomness fires, serial == parallel exactly."""
        graph = random_graph(120, model="erdos_renyi", edge_probability=0.06,
                             seed=5)
        config = SnapleConfig.paper_default(seed=1, k_local=8)
        predictor = SnapleLinkPredictor(config)
        serial = predictor.predict(graph, backend=backend)
        parallel = predictor.predict(graph, backend=backend,
                                     workers=min(PARITY_WORKERS))
        assert_reports_identical(serial, parallel)

    def test_partitioner_does_not_change_predictions(self, small_graph):
        """Ownership placement affects traffic only, never the answer."""
        graph = small_graph
        config = SnapleConfig.paper_default(seed=3, k_local=10)
        predictor = SnapleLinkPredictor(config)
        random_cut = predictor.predict(graph, backend="gas", workers=2)
        greedy_cut = predictor.predict(graph, backend="gas", workers=2,
                                       partitioner=GreedyVertexCut())
        assert_reports_identical(random_cut, greedy_cut)

    def test_gas_vertex_subset_parity(self, small_graph):
        graph = small_graph
        subset = list(range(40))
        predictor = SnapleLinkPredictor(SnapleConfig.paper_default(seed=3))
        baseline = predictor.predict(graph, backend="gas", workers=1,
                                     vertices=subset)
        run = predictor.predict(graph, backend="gas", workers=3,
                                vertices=subset)
        assert sorted(run.predictions) == subset
        assert_reports_identical(baseline, run)


class TestPartitionAccounting:
    """RunReport totals must equal the sum of the per-partition reports."""

    @pytest.mark.parametrize("backend", PARALLEL_BACKENDS)
    def test_parallel_accounting_sums(self, backend, small_graph):
        graph = small_graph
        predictor = SnapleLinkPredictor(SnapleConfig.paper_default(seed=3))
        run = predictor.predict(graph, backend=backend,
                                workers=min(PARITY_WORKERS))
        assert_partition_totals(run)
        assert len(run.partition_reports) == min(PARITY_WORKERS)
        assert sum(
            partition.num_vertices for partition in run.partition_reports
        ) == graph.num_vertices

    @pytest.mark.parametrize("backend", PARALLEL_BACKENDS)
    def test_serial_accounting_sums(self, backend, small_graph):
        graph = small_graph
        predictor = SnapleLinkPredictor(SnapleConfig.paper_default(seed=3))
        run = predictor.predict(graph, backend=backend)
        assert run.workers is None
        assert_partition_totals(run)
        assert len(run.partition_reports) == 1

    def test_subset_accounting_sums(self, small_graph):
        graph = small_graph
        predictor = SnapleLinkPredictor(SnapleConfig.paper_default(seed=3))
        run = predictor.predict(graph, backend="gas", workers=3,
                                vertices=list(range(50)))
        assert_partition_totals(run)

    def test_report_to_dict_carries_parallel_fields(self, small_graph):
        graph = small_graph
        predictor = SnapleLinkPredictor(SnapleConfig.paper_default(seed=3))
        run = predictor.predict(graph, backend="gas", workers=2)
        payload = run.to_dict()
        assert payload["workers"] == 2
        assert len(payload["per_partition_seconds"]) == 2
        assert payload["sync_overhead_seconds"] >= 0.0
        assert len(payload["partitions"]) == 2
        assert all("shipped_bytes" in entry for entry in payload["partitions"])


class TestWorkersValidation:
    """Backends without the capability reject workers; bad values reject."""

    @pytest.mark.parametrize("backend", SERIAL_BACKENDS)
    def test_non_parallel_backends_reject_workers(self, backend):
        with pytest.raises(ConfigurationError, match="workers"):
            get_backend(backend, workers=2)

    @pytest.mark.parametrize("workers", [0, -1, 65, 1.5, True, "4"])
    def test_invalid_worker_counts_rejected(self, workers):
        with pytest.raises(ConfigurationError):
            get_backend("gas", workers=workers)

    @pytest.mark.parametrize("backend", PARALLEL_BACKENDS)
    def test_workers_and_cluster_conflict(self, backend):
        with pytest.raises(ConfigurationError, match="cluster"):
            get_backend(backend, workers=2, cluster=cluster_of(TYPE_I, 4))

    @pytest.mark.parametrize("backend", PARALLEL_BACKENDS)
    def test_capability_advertised(self, backend):
        capabilities = backend_capabilities(backend)
        assert capabilities.parallel
        assert "workers" in capabilities.options
