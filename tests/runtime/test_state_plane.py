"""The columnar state plane: store/block units plus dict-path parity.

Covers the acceptance grid of the state-plane refactor: predictions and
candidate scores must be bit-identical across {dict, columnar} × {gas, bsp}
× {serial, workers=1, workers=4}, the ``SNAPLE_DICT_STATE=1`` escape hatch
must actually flip the path, and the accounting (``payload_size_bytes``
parity of :meth:`VertexRow.nbytes`, message-block payload bytes) must match
the historical dict numbers exactly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.gas.vertex_program import payload_size_bytes
from repro.runtime.state import (
    FieldKind,
    MessageBlock,
    StateField,
    StateSchema,
    StateStore,
    common_state_schema,
    dict_state_forced,
)
from repro.snaple.bsp_program import (
    MESSAGE_BASE_BYTES,
    decode_snaple_inboxes,
    encode_snaple_messages,
)
from repro.snaple.config import SnapleConfig
from repro.snaple.predictor import SnapleLinkPredictor


def snaple_like_schema() -> StateSchema:
    return StateSchema((
        StateField("gamma", FieldKind.INT_LIST),
        StateField("sims", FieldKind.INT_FLOAT_MAP),
        StateField("predicted", FieldKind.INT_LIST),
        StateField("rank", FieldKind.SCALAR, "float64"),
    ))


# ----------------------------------------------------------------------
# StateStore / VertexRow
# ----------------------------------------------------------------------
class TestStateStore:
    def test_row_roundtrip_preserves_values_and_order(self):
        store = StateStore(4, snaple_like_schema())
        row = store.row(1)
        row["gamma"] = [3, 1, 1, 2]
        row["sims"] = {7: 0.5, 2: 0.25, 9: 1.0}  # insertion order matters
        row["rank"] = 0.125
        assert row["gamma"] == [3, 1, 1, 2]
        assert list(row["sims"].items()) == [(7, 0.5), (2, 0.25), (9, 1.0)]
        assert row["rank"] == 0.125
        # Reads return the assigned object itself (cache), like a dict.
        assert row["gamma"] is row["gamma"]

    def test_row_mapping_protocol_matches_dict(self):
        store = StateStore(3, snaple_like_schema())
        row = store.row(0)
        assert dict(row) == {}
        assert row.get("gamma", "missing") == "missing"
        assert "gamma" not in row
        assert "scores" not in row  # undeclared fields read as absent
        row["gamma"] = []
        row["sims"] = {1: 2.0}
        assert "gamma" in row and row["gamma"] == []
        assert set(row) == {"gamma", "sims"}
        assert len(row) == 2
        assert row == {"gamma": [], "sims": {1: 2.0}}
        assert {"gamma": [], "sims": {1: 2.0}} == dict(row.items())

    def test_setting_undeclared_field_raises(self):
        store = StateStore(2, snaple_like_schema())
        with pytest.raises(KeyError):
            store.row(0)["scores"] = {1: 2.0}

    def test_nbytes_matches_payload_size_bytes_of_dict_twin(self):
        store = StateStore(2, snaple_like_schema())
        row = store.row(0)
        twin = {}
        row["gamma"] = twin["gamma"] = [5, 6, 7]
        row["sims"] = twin["sims"] = {1: 0.5, 2: 0.75}
        row["predicted"] = twin["predicted"] = []
        row["rank"] = twin["rank"] = 3.5
        assert row.nbytes() == payload_size_bytes(twin)
        assert store.row(1).nbytes() == payload_size_bytes({})

    def test_rewriting_a_row_updates_live_bytes(self):
        store = StateStore(2, snaple_like_schema())
        row = store.row(0)
        row["gamma"] = list(range(10))
        before = store.nbytes()
        row["gamma"] = [1]
        assert store.nbytes() == before - 9 * 8

    def test_bulk_set_rows_and_csr_roundtrip(self):
        schema = StateSchema((StateField("gamma", FieldKind.INT_LIST),))
        store = StateStore(5, schema)
        rows = np.array([1, 3, 4], dtype=np.int64)
        counts = np.array([2, 0, 3], dtype=np.int64)
        flat = np.array([10, 11, 20, 21, 22], dtype=np.int64)
        store.set_rows("gamma", rows, counts, flat)
        csr_counts, csr_flat, csr_vals = store.field_csr("gamma")
        assert csr_vals is None
        assert csr_counts.tolist() == [0, 2, 0, 0, 3]
        assert csr_flat.tolist() == [10, 11, 20, 21, 22]
        assert store.row(1)["gamma"] == [10, 11]
        assert store.row(3)["gamma"] == []  # present but empty
        assert "gamma" in store.row(3)
        assert "gamma" not in store.row(0)

    def test_extract_merge_roundtrip_preserves_presence(self):
        schema = snaple_like_schema()
        source = StateStore(6, schema)
        source.row(1)["gamma"] = [4, 5]
        source.row(2)["sims"] = {3: 1.5}
        source.row(4)["rank"] = 2.0
        state_slice = source.extract(
            np.array([1, 2, 3, 4]), ("gamma", "sims", "rank")
        )
        destination = StateStore(6, schema)
        destination.merge(state_slice)
        assert destination.row(1) == source.row(1)
        assert destination.row(2) == source.row(2)
        assert destination.row(3) == {}
        assert destination.row(4) == {"rank": 2.0}
        assert "gamma" not in destination.row(3)

    def test_common_state_schema_requires_agreement(self):
        schema = snaple_like_schema()

        class Declares:
            def state_schema(self):
                return schema

        class DeclaresOther:
            def state_schema(self):
                return StateSchema((StateField("x", FieldKind.SCALAR),))

        class DeclaresNothing:
            pass

        assert common_state_schema([Declares(), Declares()]) == schema
        assert common_state_schema([Declares(), DeclaresOther()]) is None
        assert common_state_schema([Declares(), DeclaresNothing()]) is None

    def test_rows_sequence_and_mapping_views(self):
        store = StateStore(3, snaple_like_schema())
        rows = store.rows()
        assert len(rows) == 3
        rows[1]["gamma"] = [7]
        mapping = store.rows_mapping()
        assert len(mapping) == 3
        assert mapping[1]["gamma"] == [7]


# ----------------------------------------------------------------------
# MessageBlock
# ----------------------------------------------------------------------
SAMPLE_MESSAGES = [
    (4, 1, ("register", 4)),
    (2, 1, ("gamma", 2, [5, 6, 7])),
    (2, 3, ("sims", 2, {9: 0.5, 1: 0.25})),
    (0, 1, ("register", 0)),
    (4, 3, ("gamma", 4, [])),
]


class TestMessageBlock:
    def test_encode_route_decode_roundtrip(self):
        block = encode_snaple_messages(SAMPLE_MESSAGES).sorted_by_sender()
        inboxes = decode_snaple_inboxes(block)
        # Sender-sorted, each sender's emission order preserved.
        assert inboxes[1] == [("register", 0), ("gamma", 2, [5, 6, 7]),
                              ("register", 4)]
        assert inboxes[3] == [("sims", 2, {9: 0.5, 1: 0.25}),
                              ("gamma", 4, [])]
        # Decoded sims dicts preserve insertion order.
        assert list(inboxes[3][0][2].items()) == [(9, 0.5), (1, 0.25)]

    def test_payload_bytes_match_dict_accounting(self):
        block = encode_snaple_messages(SAMPLE_MESSAGES)
        expected = [payload_size_bytes(value) for _s, _t, value in SAMPLE_MESSAGES]
        assert block.payload_bytes(MESSAGE_BASE_BYTES).tolist() == expected

    def test_split_by_preserves_relative_order(self):
        block = encode_snaple_messages(SAMPLE_MESSAGES).sorted_by_sender()
        owner = np.array([0, 1, 0, 1, 0], dtype=np.int64)  # per vertex
        parts = block.split_by(owner[block.receiver], 2)
        assert sum(part.num_messages for part in parts) == block.num_messages
        for w, part in enumerate(parts):
            assert (owner[part.receiver] == w).all()
            assert part.sender.tolist() == sorted(part.sender.tolist())

    def test_concat_and_empty(self):
        left = encode_snaple_messages(SAMPLE_MESSAGES[:2])
        right = encode_snaple_messages(SAMPLE_MESSAGES[2:])
        merged = MessageBlock.concat([left, MessageBlock.empty(), right])
        assert merged.num_messages == len(SAMPLE_MESSAGES)
        decoded = decode_snaple_inboxes(merged)
        assert sum(len(v) for v in decoded.values()) == len(SAMPLE_MESSAGES)
        assert MessageBlock.concat([]).num_messages == 0


# ----------------------------------------------------------------------
# Dict-path parity: {dict, columnar} × {gas, bsp} × {serial, 1, 4 workers}
# ----------------------------------------------------------------------
@pytest.fixture(scope="module", name="parity_graph")
def parity_graph_fixture(random_graph):
    """The 150-vertex parity graph, shared session-wide via random_graph."""
    return random_graph(150, 3, 0.3, seed=11)


def half_jaccard(left, right):
    """A custom similarity outside the vectorized kernel's registry."""
    union = len(left | right)
    return 0.5 * len(left & right) / union if union else 0.0


def unsupported_kernel_config() -> SnapleConfig:
    """A configuration the vectorized kernel cannot run (custom callable)."""
    from repro.snaple.aggregators import get_aggregator
    from repro.snaple.combinators import get_combinator
    from repro.snaple.scoring import ScoreConfig

    custom = ScoreConfig(
        name="custom",
        similarity_name="jaccard",
        combinator=get_combinator("linear"),
        aggregator=get_aggregator("Sum"),
        similarity=half_jaccard,  # not the registry callable
    )
    return SnapleConfig(score=custom, k_local=8, seed=5)


def truncating_config():
    """Truncation and sampling both fire on this graph's degrees."""
    return SnapleConfig.paper_default(seed=9, k_local=6,
                                      truncation_threshold=5)


def predict(graph, config, backend, workers, monkeypatch, *, dict_state):
    if dict_state:
        monkeypatch.setenv("SNAPLE_DICT_STATE", "1")
    else:
        monkeypatch.delenv("SNAPLE_DICT_STATE", raising=False)
    options = {} if workers is None else {"workers": workers}
    return SnapleLinkPredictor(config).predict(graph, backend=backend,
                                               **options)


class TestDictColumnarParity:
    @pytest.mark.parametrize("backend", ["gas", "bsp"])
    @pytest.mark.parametrize("workers", [None, 1, 4])
    def test_bit_identical_predictions_and_scores(self, backend, workers,
                                                  monkeypatch, parity_graph):
        graph = parity_graph
        config = truncating_config()
        columnar = predict(graph, config, backend, workers, monkeypatch,
                           dict_state=False)
        legacy = predict(graph, config, backend, workers, monkeypatch,
                         dict_state=True)
        assert columnar.predictions == legacy.predictions
        assert columnar.scores == legacy.scores
        assert columnar.supersteps == legacy.supersteps

    @pytest.mark.parametrize("backend", ["gas", "bsp"])
    def test_parity_with_unsupported_kernel_config(self, backend, monkeypatch,
                                                   parity_graph):
        """Configs outside the vectorized kernel still agree across paths.

        The columnar GAS executor requires the kernel, so it falls back to
        the dict path for such configurations; the BSP executor runs them
        columnar.  Either way the answers must be identical.
        """
        graph = parity_graph
        config = unsupported_kernel_config()
        columnar = predict(graph, config, backend, 4, monkeypatch,
                           dict_state=False)
        legacy = predict(graph, config, backend, 4, monkeypatch,
                         dict_state=True)
        assert columnar.predictions == legacy.predictions
        assert columnar.scores == legacy.scores

    def test_simulated_accounting_identical_across_paths(self, monkeypatch,
                                                         parity_graph):
        """Network/memory/simulated-time numbers must not drift either."""
        from repro.gas.cluster import TYPE_I, cluster_of

        graph = parity_graph
        config = truncating_config()
        for backend in ("gas", "bsp"):
            predictor = SnapleLinkPredictor(config)
            monkeypatch.setenv("SNAPLE_DICT_STATE", "1")
            legacy = predictor.predict(graph, backend=backend,
                                       cluster=cluster_of(TYPE_I, 4))
            monkeypatch.delenv("SNAPLE_DICT_STATE")
            columnar = predictor.predict(graph, backend=backend,
                                         cluster=cluster_of(TYPE_I, 4))
            assert columnar.network_bytes == legacy.network_bytes
            assert columnar.peak_memory_bytes == legacy.peak_memory_bytes
            assert columnar.simulated_seconds == legacy.simulated_seconds


class TestEscapeHatch:
    def test_reports_record_which_state_path_ran(self, monkeypatch,
                                                 parity_graph):
        graph = parity_graph
        config = truncating_config()
        predictor = SnapleLinkPredictor(config)
        monkeypatch.delenv("SNAPLE_DICT_STATE", raising=False)
        assert not dict_state_forced()
        for options in ({}, {"workers": 2}):
            report = predictor.predict(graph, backend="gas", **options)
            assert report.extra["state_columnar"] == 1.0
            assert report.extra["state_plane_peak_bytes"] > 0
        monkeypatch.setenv("SNAPLE_DICT_STATE", "1")
        assert dict_state_forced()
        for options in ({}, {"workers": 2}):
            report = predictor.predict(graph, backend="gas", **options)
            assert report.extra["state_columnar"] == 0.0

    def test_engine_exposes_state_store_only_on_columnar_path(self, monkeypatch,
                                                              parity_graph):
        from repro.gas.engine import GasEngine
        from repro.snaple.program import build_snaple_steps

        graph = parity_graph
        config = truncating_config()
        monkeypatch.delenv("SNAPLE_DICT_STATE", raising=False)
        engine = GasEngine(graph=graph)
        engine.run(build_snaple_steps(config, graph))
        assert engine.state_store is not None
        assert engine.state_store.nbytes() > 0
        assert engine.memory.state_plane_peak_bytes > 0

        monkeypatch.setenv("SNAPLE_DICT_STATE", "1")
        engine = GasEngine(graph=graph)
        engine.run(build_snaple_steps(config, graph))
        assert engine.state_store is None

    def test_parallel_reports_routing_overhead_per_superstep(self, monkeypatch,
                                                             parity_graph):
        monkeypatch.delenv("SNAPLE_DICT_STATE", raising=False)
        graph = parity_graph
        report = SnapleLinkPredictor(truncating_config()).predict(
            graph, backend="bsp", workers=2
        )
        supersteps = report.supersteps
        assert report.extra["routing_seconds"] >= 0.0
        for index in range(supersteps):
            assert f"routing_seconds_step{index}" in report.extra
            assert f"state_plane_bytes_step{index}" in report.extra


# ----------------------------------------------------------------------
# Partition consolidation (satellite): shims re-export one implementation
# ----------------------------------------------------------------------
class TestPartitionConsolidation:
    def test_gas_shim_reexports_runtime_partition(self):
        import repro.gas.partition as gas_partition
        import repro.runtime.partition as runtime_partition

        assert gas_partition.partition_graph is runtime_partition.partition_graph
        assert gas_partition.GraphPartition is runtime_partition.GraphPartition
        assert gas_partition.HdrfVertexCut is runtime_partition.HdrfVertexCut

    def test_bsp_shim_reexports_runtime_partition(self):
        import repro.bsp.partition as bsp_partition
        import repro.runtime.partition as runtime_partition

        assert bsp_partition.partition_vertices is runtime_partition.partition_vertices
        assert bsp_partition.VertexPartition is runtime_partition.VertexPartition
        assert bsp_partition.HashVertexPartitioner is runtime_partition.HashVertexPartitioner
