"""The unified ``predict``/``predict_iter`` surface and the deprecation shims."""

from __future__ import annotations

import math

import pytest

from repro.errors import ConfigurationError
from repro.gas.cluster import TYPE_I, cluster_of
from repro.runtime.report import VertexPrediction
from repro.snaple.config import SnapleConfig
from repro.snaple.predictor import PredictionResult, SnapleLinkPredictor


@pytest.fixture
def parity_config() -> SnapleConfig:
    return SnapleConfig(k_local=10, truncation_threshold=math.inf, seed=5)


class TestPredictDispatch:
    def test_default_backend_is_local(self, small_social_graph):
        report = SnapleLinkPredictor().predict(small_social_graph)
        assert report.backend == "local"

    def test_unknown_backend_raises_configuration_error(self, small_social_graph):
        with pytest.raises(ConfigurationError, match="unknown execution backend"):
            SnapleLinkPredictor().predict(small_social_graph, backend="spark")

    def test_unsupported_option_raises_configuration_error(self,
                                                           small_social_graph):
        # The historical failure mode: cluster= with the local backend used
        # to surface as a bare TypeError from the call machinery.
        with pytest.raises(ConfigurationError) as excinfo:
            SnapleLinkPredictor().predict(small_social_graph, backend="local",
                                          cluster=object())
        message = str(excinfo.value)
        assert "'local'" in message
        assert "'cluster'" in message

    def test_mode_alias_is_deprecated_and_keeps_legacy_return_type(
            self, small_social_graph):
        predictor = SnapleLinkPredictor(SnapleConfig(k_local=5))
        with pytest.warns(DeprecationWarning, match="mode"):
            result = predictor.predict(small_social_graph, mode="local")
        assert isinstance(result, PredictionResult)
        assert result.predictions
        with pytest.warns(DeprecationWarning):
            gas = predictor.predict(small_social_graph, mode="gas")
        assert isinstance(gas, PredictionResult)
        assert gas.gas_result is not None

    def test_mode_that_is_no_backend_is_treated_as_execution_mode(
            self, small_social_graph):
        # Not a backend name -> passed to the default (local) backend as its
        # execution mode, which rejects unknown values.
        with pytest.raises(ConfigurationError, match="mode"):
            SnapleLinkPredictor().predict(small_social_graph, mode="spark")

    def test_mode_selects_local_kernel(self, small_social_graph):
        predictor = SnapleLinkPredictor(SnapleConfig(k_local=5))
        vectorized = predictor.predict(small_social_graph, mode="vectorized")
        reference = predictor.predict(small_social_graph, mode="reference")
        assert vectorized.backend == reference.backend == "local"
        assert vectorized.extra["kernel_vectorized"] == 1.0
        assert reference.extra["kernel_vectorized"] == 0.0
        assert vectorized.predictions == reference.predictions
        assert vectorized.scores == reference.scores

    def test_mode_with_explicit_backend_is_an_option(self, small_social_graph):
        predictor = SnapleLinkPredictor(SnapleConfig(k_local=5))
        report = predictor.predict(small_social_graph, backend="local",
                                   mode="reference")
        assert report.extra["kernel_vectorized"] == 0.0
        # Backends without a 'mode' option reject it by name.
        with pytest.raises(ConfigurationError, match="mode"):
            predictor.predict(small_social_graph, backend="gas",
                              mode="vectorized")


class TestPredictIter:
    def test_streams_every_vertex_in_order(self, small_social_graph,
                                           parity_config):
        predictor = SnapleLinkPredictor(parity_config)
        full = predictor.predict(small_social_graph, backend="local")
        streamed = list(predictor.predict_iter(small_social_graph,
                                               batch_size=17))
        assert [record.vertex for record in streamed] == \
            list(small_social_graph.vertices())
        assert all(isinstance(record, VertexPrediction) for record in streamed)
        assert {record.vertex: record.predicted for record in streamed} == \
            full.predictions

    def test_respects_vertex_selection(self, small_social_graph, parity_config):
        predictor = SnapleLinkPredictor(parity_config)
        subset = [5, 2, 9]
        streamed = list(predictor.predict_iter(small_social_graph,
                                               vertices=subset))
        assert [record.vertex for record in streamed] == subset

    def test_works_on_non_incremental_backends(self, small_social_graph,
                                               parity_config):
        predictor = SnapleLinkPredictor(parity_config)
        local = predictor.predict(small_social_graph, backend="local")
        streamed = list(predictor.predict_iter(small_social_graph,
                                               backend="gas", batch_size=16))
        assert {record.vertex: record.predicted for record in streamed} == \
            local.predictions

    def test_rejects_bad_batch_size(self, small_social_graph):
        with pytest.raises(ConfigurationError, match="batch_size"):
            list(SnapleLinkPredictor().predict_iter(small_social_graph,
                                                    batch_size=0))

    def test_top_helper(self, small_social_graph, parity_config):
        record = next(SnapleLinkPredictor(parity_config).predict_iter(
            small_social_graph
        ))
        expected = record.predicted[0] if record.predicted else None
        assert record.top == expected


class TestDeprecationShims:
    def test_predict_local_warns_and_matches_new_api(self, small_social_graph,
                                                     parity_config):
        predictor = SnapleLinkPredictor(parity_config)
        with pytest.warns(DeprecationWarning, match="predict_local"):
            legacy = predictor.predict_local(small_social_graph)
        assert isinstance(legacy, PredictionResult)
        report = predictor.predict(small_social_graph, backend="local")
        assert legacy.predictions == report.predictions
        assert legacy.scores == report.scores
        assert legacy.simulated_seconds is None
        assert legacy.gas_result is None

    def test_predict_gas_warns_and_keeps_accounting(self, small_social_graph,
                                                    parity_config):
        predictor = SnapleLinkPredictor(parity_config)
        cluster = cluster_of(TYPE_I, 4)
        with pytest.warns(DeprecationWarning, match="predict_gas"):
            legacy = predictor.predict_gas(small_social_graph, cluster=cluster)
        assert isinstance(legacy, PredictionResult)
        assert legacy.simulated_seconds > 0
        assert legacy.gas_result is not None
        assert legacy.gas_result.metrics.total_network_bytes > 0
        report = predictor.predict(small_social_graph, backend="gas",
                                   cluster=cluster)
        assert legacy.predictions == report.predictions

    def test_shim_results_keep_helper_methods(self, small_social_graph,
                                              parity_config):
        with pytest.warns(DeprecationWarning):
            legacy = SnapleLinkPredictor(parity_config).predict_local(
                small_social_graph
            )
        edges = legacy.predicted_edges()
        assert all(isinstance(edge, tuple) for edge in edges)
