"""Crash-injection harness for checkpointed, fault-tolerant parallel runs.

The acceptance bar of the fault-tolerance layer, asserted here:

* killing worker N at *every* superstep K, across {gas, bsp} × {dict,
  columnar} × {1, 4 workers}, yields a recovered run whose predictions,
  candidate scores (bit-exact floats) and deterministic accounting counters
  are identical to an uninterrupted run;
* a corrupted checkpoint shard or truncated manifest is detected (SHA-256 /
  manifest validation) and surfaces as a clean
  :class:`~repro.errors.CheckpointError`, never as silently wrong results;
* explicit ``resume_from`` restores an interrupted run and refuses
  incompatible checkpoints (wrong workers/config/flavour).

Worker kills go through the :class:`tests.conftest.FaultInjector` fixture,
whose one-shot token-file faults stay deterministic across pool respawns.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import CheckpointError, ConfigurationError, WorkerCrashError
from repro.runtime import get_backend
from repro.runtime.checkpoint import (
    CheckpointData,
    latest_valid_checkpoint,
    list_checkpoint_dirs,
    load_checkpoint,
    resolve_checkpoint,
    save_checkpoint,
)
from repro.runtime.parallel import ParallelExecutor
from repro.snaple.config import SnapleConfig
from repro.snaple.predictor import SnapleLinkPredictor


def grid_graph(random_graph):
    return random_graph(80, 3, 0.3, seed=11)


def grid_config() -> SnapleConfig:
    return SnapleConfig.paper_default(seed=3, k_local=6)


@pytest.fixture(params=["columnar", "dict"])
def state_flavour(request, monkeypatch):
    """Run the test under both state planes (PR 4's escape hatch)."""
    if request.param == "dict":
        monkeypatch.setenv("SNAPLE_DICT_STATE", "1")
    else:
        monkeypatch.delenv("SNAPLE_DICT_STATE", raising=False)
    return request.param


#: Uninterrupted baselines, computed once per (kind, workers, flavour) cell
#: of the grid — every kill-at-K case compares against the same baseline.
_BASELINES: dict[tuple[str, int, str], object] = {}


def baseline_report(graph, kind: str, workers: int, flavour: str):
    key = (kind, workers, flavour)
    if key not in _BASELINES:
        predictor = SnapleLinkPredictor(grid_config())
        _BASELINES[key] = predictor.predict(graph, backend=kind,
                                            workers=workers)
    return _BASELINES[key]


def assert_bit_identical(baseline, recovered) -> None:
    """Predictions, scores and deterministic accounting must match exactly."""
    assert recovered.predictions == baseline.predictions
    assert dict(recovered.scores) == dict(baseline.scores)
    assert recovered.supersteps == baseline.supersteps
    for expected, actual in zip(baseline.partition_reports,
                                recovered.partition_reports):
        assert actual.num_vertices == expected.num_vertices
        assert actual.num_predictions == expected.num_predictions
        assert actual.num_predicted_edges == expected.num_predicted_edges
        assert actual.gather_invocations == expected.gather_invocations
        assert actual.apply_invocations == expected.apply_invocations
        assert actual.shipped_bytes == expected.shipped_bytes


class TestKillWorkerResumeParity:
    """Crash at any superstep ⇒ the recovered run is bit-identical."""

    @pytest.mark.parametrize("workers", [1, 4])
    @pytest.mark.parametrize("kind,superstep",
                             [("gas", k) for k in range(3)]
                             + [("bsp", k) for k in range(4)])
    def test_kill_at_superstep(self, kind, superstep, workers, state_flavour,
                               fault_injector, tmp_path, random_graph):
        graph = grid_graph(random_graph)
        baseline = baseline_report(graph, kind, workers, state_flavour)
        fault = fault_injector.kill_worker(superstep, partition=workers - 1)
        predictor = SnapleLinkPredictor(grid_config())
        recovered = predictor.predict(
            graph, backend=kind, workers=workers,
            checkpoint_dir=tmp_path / "ckpt", fault=fault,
        )
        assert recovered.extra["worker_restarts"] == 1.0
        # The resume point is the newest checkpoint before the crash (0 when
        # the crash predates the first checkpoint).
        assert recovered.extra["resumed_from_superstep"] == float(superstep)
        assert_bit_identical(baseline, recovered)

    def test_crash_without_checkpoints_replays_from_scratch(
            self, fault_injector, random_graph):
        graph = grid_graph(random_graph)
        baseline = baseline_report(graph, "gas", 2, "columnar")
        fault = fault_injector.kill_worker(2, partition=0)
        predictor = SnapleLinkPredictor(grid_config())
        recovered = predictor.predict(graph, backend="gas", workers=2,
                                      fault=fault)
        assert recovered.extra["worker_restarts"] == 1.0
        assert recovered.extra["resumed_from_superstep"] == 0.0
        assert_bit_identical(baseline, recovered)

    def test_restart_budget_exhausted_raises(self, fault_injector, tmp_path,
                                             random_graph):
        graph = grid_graph(random_graph)
        fault = fault_injector.kill_worker(1, partition=0)
        predictor = SnapleLinkPredictor(grid_config())
        with pytest.raises(WorkerCrashError, match="died mid-superstep"):
            predictor.predict(graph, backend="gas", workers=2,
                              checkpoint_dir=tmp_path / "ckpt",
                              max_restarts=0, fault=fault)

    def test_partitioner_choice_survives_recovery(self, fault_injector,
                                                  tmp_path, random_graph):
        from repro.gas.partition import GreedyVertexCut

        graph = grid_graph(random_graph)
        baseline = baseline_report(graph, "gas", 2, "columnar")
        fault = fault_injector.kill_worker(1, partition=1)
        predictor = SnapleLinkPredictor(grid_config())
        recovered = predictor.predict(
            graph, backend="gas", workers=2, partitioner=GreedyVertexCut(),
            checkpoint_dir=tmp_path / "ckpt", fault=fault,
        )
        assert recovered.extra["worker_restarts"] == 1.0
        assert recovered.predictions == baseline.predictions
        assert dict(recovered.scores) == dict(baseline.scores)


class TestExplicitResume:
    """An interrupted run restores from resume_from, bit-identically."""

    @pytest.mark.parametrize("kind", ["gas", "bsp"])
    def test_crash_then_resume(self, kind, state_flavour, fault_injector,
                               tmp_path, random_graph):
        graph = grid_graph(random_graph)
        baseline = baseline_report(graph, kind, 2, state_flavour)
        checkpoint_dir = tmp_path / "ckpt"
        fault = fault_injector.kill_worker(2, partition=0)
        predictor = SnapleLinkPredictor(grid_config())
        with pytest.raises(WorkerCrashError):
            predictor.predict(graph, backend=kind, workers=2,
                              checkpoint_dir=checkpoint_dir,
                              max_restarts=0, fault=fault)
        resumed = predictor.predict(graph, backend=kind, workers=2,
                                    resume_from=checkpoint_dir)
        assert resumed.extra["resumed_from_superstep"] == 2.0
        assert_bit_identical(baseline, resumed)

    def test_resume_from_specific_step_dir(self, tmp_path, random_graph):
        graph = grid_graph(random_graph)
        baseline = baseline_report(graph, "gas", 2, "columnar")
        checkpoint_dir = tmp_path / "ckpt"
        predictor = SnapleLinkPredictor(grid_config())
        predictor.predict(graph, backend="gas", workers=2,
                          checkpoint_dir=checkpoint_dir)
        first_step = list_checkpoint_dirs(checkpoint_dir)[0]
        resumed = predictor.predict(graph, backend="gas", workers=2,
                                    resume_from=first_step)
        assert resumed.extra["resumed_from_superstep"] == 1.0
        assert_bit_identical(baseline, resumed)

    def test_crash_during_resumed_run_falls_back_to_resume_point(
            self, fault_injector, tmp_path, random_graph):
        # A crash in a resumed run without a checkpoint_dir must retry from
        # the explicitly supplied checkpoint, not replay from scratch.
        graph = grid_graph(random_graph)
        baseline = baseline_report(graph, "bsp", 2, "columnar")
        checkpoint_dir = tmp_path / "ckpt"
        first_fault = fault_injector.kill_worker(2, partition=0)
        predictor = SnapleLinkPredictor(grid_config())
        with pytest.raises(WorkerCrashError):
            predictor.predict(graph, backend="bsp", workers=2,
                              checkpoint_dir=checkpoint_dir,
                              max_restarts=0, fault=first_fault)
        second_fault = fault_injector.kill_worker(3, partition=1)
        recovered = predictor.predict(graph, backend="bsp", workers=2,
                                      resume_from=checkpoint_dir,
                                      fault=second_fault)
        assert recovered.extra["worker_restarts"] == 1.0
        assert recovered.extra["resumed_from_superstep"] == 2.0
        assert_bit_identical(baseline, recovered)

    def test_resume_after_completed_bsp_run_reproduces_predictions(
            self, tmp_path, random_graph):
        # BSP checkpoints can postdate the final superstep (its count is
        # dynamic); resuming such a snapshot must reproduce the predictions
        # from the restored state without executing anything.
        graph = grid_graph(random_graph)
        checkpoint_dir = tmp_path / "ckpt"
        predictor = SnapleLinkPredictor(grid_config())
        completed = predictor.predict(graph, backend="bsp", workers=2,
                                      checkpoint_dir=checkpoint_dir)
        resumed = predictor.predict(graph, backend="bsp", workers=2,
                                    resume_from=checkpoint_dir)
        assert resumed.predictions == completed.predictions
        assert resumed.supersteps == completed.supersteps


class TestCorruptionDetection:
    """Corruption must raise CheckpointError, never return bad results."""

    def checkpointed_run(self, tmp_path, random_graph, kind="gas"):
        graph = grid_graph(random_graph)
        checkpoint_dir = tmp_path / "ckpt"
        predictor = SnapleLinkPredictor(grid_config())
        predictor.predict(graph, backend=kind, workers=2,
                          checkpoint_dir=checkpoint_dir)
        return graph, checkpoint_dir, predictor

    @pytest.mark.parametrize("shard",
                             ["state.bin", "messages.bin", "runmeta.bin"])
    def test_corrupted_shard_fails_checksum(self, shard, fault_injector,
                                            tmp_path, random_graph):
        graph, checkpoint_dir, predictor = self.checkpointed_run(
            tmp_path, random_graph, kind="bsp"
        )
        fault_injector.corrupt_shard(checkpoint_dir, shard=shard)
        with pytest.raises(CheckpointError, match="checksum"):
            predictor.predict(graph, backend="bsp", workers=2,
                              resume_from=checkpoint_dir)

    def test_truncated_manifest_detected(self, fault_injector, tmp_path,
                                         random_graph):
        graph, checkpoint_dir, predictor = self.checkpointed_run(
            tmp_path, random_graph
        )
        fault_injector.truncate_manifest(checkpoint_dir)
        with pytest.raises(CheckpointError, match="truncated|JSON"):
            predictor.predict(graph, backend="gas", workers=2,
                              resume_from=checkpoint_dir)

    def test_missing_shard_detected(self, tmp_path, random_graph):
        graph, checkpoint_dir, predictor = self.checkpointed_run(
            tmp_path, random_graph
        )
        newest = list_checkpoint_dirs(checkpoint_dir)[-1]
        (newest / "state.bin").unlink()
        with pytest.raises(CheckpointError, match="missing"):
            predictor.predict(graph, backend="gas", workers=2,
                              resume_from=checkpoint_dir)

    def test_recovery_falls_back_past_corrupt_newest(self, fault_injector,
                                                     tmp_path, random_graph):
        # Auto-recovery (unlike explicit resume) may skip a corrupt newest
        # checkpoint: determinism makes any older snapshot equally correct.
        graph = grid_graph(random_graph)
        baseline = baseline_report(graph, "gas", 2, "columnar")
        checkpoint_dir = tmp_path / "ckpt"
        predictor = SnapleLinkPredictor(grid_config())
        predictor.predict(graph, backend="gas", workers=2,
                          checkpoint_dir=checkpoint_dir)
        fault_injector.corrupt_shard(checkpoint_dir, step=2)
        fault = fault_injector.kill_worker(2, partition=1)
        # checkpoint_every=3 keeps the crashed run from re-writing (and
        # thereby repairing) the corrupt step-000002 before it crashes.
        recovered = predictor.predict(graph, backend="gas", workers=2,
                                      checkpoint_dir=checkpoint_dir,
                                      checkpoint_every=3, fault=fault)
        assert recovered.extra["worker_restarts"] == 1.0
        assert recovered.extra["resumed_from_superstep"] == 1.0
        assert_bit_identical(baseline, recovered)


class TestResumeValidation:
    """Incompatible checkpoints are rejected up front."""

    def write_checkpoint(self, tmp_path, random_graph, **overrides):
        graph = grid_graph(random_graph)
        checkpoint_dir = tmp_path / "ckpt"
        predictor = SnapleLinkPredictor(grid_config())
        predictor.predict(graph, backend="gas", workers=2,
                          checkpoint_dir=checkpoint_dir)
        return graph, checkpoint_dir

    def test_wrong_worker_count_rejected(self, tmp_path, random_graph):
        graph, checkpoint_dir = self.write_checkpoint(tmp_path, random_graph)
        predictor = SnapleLinkPredictor(grid_config())
        with pytest.raises(CheckpointError, match="workers"):
            predictor.predict(graph, backend="gas", workers=3,
                              resume_from=checkpoint_dir)

    def test_wrong_config_rejected(self, tmp_path, random_graph):
        graph, checkpoint_dir = self.write_checkpoint(tmp_path, random_graph)
        other = SnapleLinkPredictor(
            SnapleConfig.paper_default(seed=3, k_local=12)
        )
        with pytest.raises(CheckpointError, match="config"):
            other.predict(graph, backend="gas", workers=2,
                          resume_from=checkpoint_dir)

    def test_wrong_graph_rejected(self, tmp_path, random_graph):
        _, checkpoint_dir = self.write_checkpoint(tmp_path, random_graph)
        other_graph = random_graph(90, 3, 0.3, seed=12)
        predictor = SnapleLinkPredictor(grid_config())
        with pytest.raises(CheckpointError, match="num_"):
            predictor.predict(other_graph, backend="gas", workers=2,
                              resume_from=checkpoint_dir)

    def test_wrong_flavour_rejected(self, tmp_path, random_graph,
                                    monkeypatch):
        graph, checkpoint_dir = self.write_checkpoint(tmp_path, random_graph)
        monkeypatch.setenv("SNAPLE_DICT_STATE", "1")
        predictor = SnapleLinkPredictor(grid_config())
        with pytest.raises(CheckpointError, match="flavour"):
            predictor.predict(graph, backend="gas", workers=2,
                              resume_from=checkpoint_dir)

    def test_different_vertex_subset_rejected(self, tmp_path, random_graph):
        # Snapshots only cover the run's active vertices; resuming with a
        # different subset would replay against partial state.
        graph = grid_graph(random_graph)
        checkpoint_dir = tmp_path / "ckpt"
        predictor = SnapleLinkPredictor(grid_config())
        predictor.predict(graph, backend="gas", workers=2,
                          vertices=list(range(40)),
                          checkpoint_dir=checkpoint_dir)
        with pytest.raises(CheckpointError, match="vertices"):
            predictor.predict(graph, backend="gas", workers=2,
                              resume_from=checkpoint_dir)
        with pytest.raises(CheckpointError, match="vertices"):
            predictor.predict(graph, backend="gas", workers=2,
                              vertices=list(range(50)),
                              resume_from=checkpoint_dir)
        resumed = predictor.predict(graph, backend="gas", workers=2,
                                    vertices=list(range(40)),
                                    resume_from=checkpoint_dir)
        baseline = predictor.predict(graph, backend="gas", workers=2,
                                     vertices=list(range(40)))
        assert_bit_identical(baseline, resumed)

    def test_resume_from_empty_directory_raises(self, tmp_path, random_graph):
        graph = grid_graph(random_graph)
        predictor = SnapleLinkPredictor(grid_config())
        with pytest.raises(CheckpointError, match="no checkpoints"):
            predictor.predict(graph, backend="gas", workers=2,
                              resume_from=tmp_path / "nothing-here")


class TestOptionValidation:
    """Checkpoint options are validated where every other option is."""

    @pytest.mark.parametrize("backend", ["gas", "bsp"])
    def test_checkpointing_requires_workers(self, backend, tmp_path):
        with pytest.raises(ConfigurationError, match="workers"):
            get_backend(backend, checkpoint_dir=tmp_path)

    def test_non_parallel_backend_rejects_checkpointing(self, tmp_path):
        with pytest.raises(ConfigurationError, match="checkpoint_dir"):
            get_backend("local", checkpoint_dir=tmp_path)

    def test_checkpoint_every_requires_dir(self, random_graph):
        graph = grid_graph(random_graph)
        with pytest.raises(ConfigurationError, match="checkpoint_dir"):
            ParallelExecutor(graph, grid_config(), workers=2, kind="gas",
                             checkpoint_every=2)

    @pytest.mark.parametrize("value", [0, -1, 1.5, True, "2"])
    def test_invalid_checkpoint_every_rejected(self, value, tmp_path,
                                               random_graph):
        graph = grid_graph(random_graph)
        with pytest.raises(ConfigurationError, match="checkpoint_every"):
            ParallelExecutor(graph, grid_config(), workers=2, kind="gas",
                             checkpoint_dir=tmp_path,
                             checkpoint_every=value)

    @pytest.mark.parametrize("value", [-1, 1.5, True])
    def test_invalid_max_restarts_rejected(self, value, random_graph):
        graph = grid_graph(random_graph)
        with pytest.raises(ConfigurationError, match="max_restarts"):
            ParallelExecutor(graph, grid_config(), workers=2, kind="gas",
                             max_restarts=value)

    @pytest.mark.parametrize("value", [0, -2.0, True])
    def test_invalid_worker_timeout_rejected(self, value, random_graph):
        graph = grid_graph(random_graph)
        with pytest.raises(ConfigurationError, match="worker_timeout"):
            ParallelExecutor(graph, grid_config(), workers=2, kind="gas",
                             worker_timeout=value)


class TestCheckpointCadence:
    """checkpoint_every controls which superstep boundaries persist."""

    def test_gas_every_superstep_skips_final(self, tmp_path, random_graph):
        # GAS has 3 known steps; a post-final snapshot could not restore the
        # merged prediction arrays, so only boundaries 1 and 2 are written.
        graph = grid_graph(random_graph)
        predictor = SnapleLinkPredictor(grid_config())
        report = predictor.predict(graph, backend="gas", workers=2,
                                   checkpoint_dir=tmp_path / "ckpt")
        names = [path.name for path in
                 list_checkpoint_dirs(tmp_path / "ckpt")]
        assert names == ["step-000001", "step-000002"]
        assert report.extra["checkpoints_written"] == 2.0
        assert report.extra["checkpoint_bytes"] > 0.0
        assert report.extra["checkpoint_seconds"] >= 0.0

    def test_cadence_two_writes_every_other_boundary(self, tmp_path,
                                                     random_graph):
        graph = grid_graph(random_graph)
        predictor = SnapleLinkPredictor(grid_config())
        predictor.predict(graph, backend="gas", workers=2,
                          checkpoint_dir=tmp_path / "gas",
                          checkpoint_every=2)
        assert [path.name for path in
                list_checkpoint_dirs(tmp_path / "gas")] == ["step-000002"]
        report = predictor.predict(graph, backend="bsp", workers=2,
                                   checkpoint_dir=tmp_path / "bsp",
                                   checkpoint_every=2)
        names = [path.name for path in list_checkpoint_dirs(tmp_path / "bsp")]
        assert names == ["step-000002", "step-000004"]
        assert report.supersteps == 4

    def test_checkpoint_accounting_in_run_report(self, tmp_path,
                                                 random_graph):
        graph = grid_graph(random_graph)
        predictor = SnapleLinkPredictor(grid_config())
        report = predictor.predict(graph, backend="bsp", workers=2,
                                   checkpoint_dir=tmp_path / "ckpt")
        payload = report.to_dict()
        assert payload["extra"]["checkpoints_written"] == 4.0
        assert payload["extra"]["checkpoint_bytes"] > 0.0
        assert payload["extra"]["worker_restarts"] == 0.0


class TestCheckpointModule:
    """Unit coverage of the on-disk checkpoint format."""

    def synthetic(self, superstep: int = 1) -> CheckpointData:
        return CheckpointData(
            kind="gas",
            flavour="dict",
            superstep=superstep,
            workers=2,
            fingerprint={"num_vertices": 4, "seed": 7},
            state={0: {"gamma": [1, 2]}, 1: {"gamma": []}},
            messages={3: [("register", 0)]},
            scores={0: {2: 0.5}},
            active=[True, False],
            aggregated={"count": 3},
            accounting={"gathers": [1, 2], "applies": [3, 4],
                        "shipped": [0, 0], "compute_seconds": [0.0, 0.0]},
            rng={"seed": 7},
        )

    def test_save_load_roundtrip(self, tmp_path):
        data = self.synthetic()
        nbytes = save_checkpoint(tmp_path, data)
        assert nbytes > 0
        loaded = load_checkpoint(tmp_path / "step-000001")
        assert loaded.kind == data.kind
        assert loaded.flavour == data.flavour
        assert loaded.superstep == data.superstep
        assert loaded.workers == data.workers
        assert loaded.fingerprint == data.fingerprint
        assert loaded.state == data.state
        assert loaded.messages == data.messages
        assert loaded.scores == data.scores
        assert loaded.active == data.active
        assert loaded.aggregated == data.aggregated
        assert loaded.accounting == data.accounting
        assert loaded.rng == data.rng

    def test_numpy_payloads_roundtrip(self, tmp_path):
        data = self.synthetic()
        data.state = {"ids": np.arange(5, dtype=np.int64),
                      "vals": np.linspace(0.0, 1.0, 5)}
        data.active = np.array([True, False, True])
        save_checkpoint(tmp_path, data)
        loaded = load_checkpoint(tmp_path / "step-000001")
        np.testing.assert_array_equal(loaded.state["ids"], data.state["ids"])
        np.testing.assert_array_equal(loaded.state["vals"],
                                      data.state["vals"])
        np.testing.assert_array_equal(loaded.active, data.active)

    def test_resolve_prefers_newest_step(self, tmp_path):
        save_checkpoint(tmp_path, self.synthetic(superstep=1))
        save_checkpoint(tmp_path, self.synthetic(superstep=3))
        assert resolve_checkpoint(tmp_path).superstep == 3
        assert (tmp_path / "LATEST").read_text().strip() == "3"

    def test_latest_valid_skips_corrupt_newest(self, tmp_path,
                                               fault_injector):
        save_checkpoint(tmp_path, self.synthetic(superstep=1))
        save_checkpoint(tmp_path, self.synthetic(superstep=2))
        fault_injector.corrupt_shard(tmp_path, step=2)
        assert latest_valid_checkpoint(tmp_path).superstep == 1
        with pytest.raises(CheckpointError, match="checksum"):
            resolve_checkpoint(tmp_path)

    def test_latest_valid_none_when_empty(self, tmp_path):
        assert latest_valid_checkpoint(tmp_path) is None
        assert latest_valid_checkpoint(tmp_path / "missing") is None

    def test_overwrite_same_superstep(self, tmp_path):
        save_checkpoint(tmp_path, self.synthetic())
        replacement = self.synthetic()
        replacement.scores = {9: {1: 2.0}}
        save_checkpoint(tmp_path, replacement)
        assert load_checkpoint(tmp_path / "step-000001").scores == {9: {1: 2.0}}

    def test_no_temporary_litter(self, tmp_path):
        save_checkpoint(tmp_path, self.synthetic())
        leftovers = [path.name for path in tmp_path.iterdir()
                     if path.name.startswith(".tmp")]
        assert leftovers == []

    def test_format_version_mismatch_rejected(self, tmp_path):
        import json

        save_checkpoint(tmp_path, self.synthetic())
        manifest_path = tmp_path / "step-000001" / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["format_version"] = 999
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(CheckpointError, match="format version"):
            load_checkpoint(tmp_path / "step-000001")
