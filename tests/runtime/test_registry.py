"""Registry registration, lookup and error paths."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, EngineError
from repro.runtime import (
    BackendCapabilities,
    ExecutionBackend,
    RunReport,
    available_backends,
    backend_capabilities,
    get_backend,
    register_backend,
    unregister_backend,
)


class _DummyBackend(ExecutionBackend):
    name = "dummy"

    def __init__(self, flavour: str = "plain") -> None:
        super().__init__()
        self.flavour = flavour

    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(name=self.name, options=("flavour",))

    def run(self, vertices=None) -> RunReport:
        graph, _ = self._require_prepared()
        targets = self._target_vertices(vertices)
        return RunReport(
            backend=self.name,
            predictions={u: [] for u in targets},
            scores={u: {} for u in targets},
        )


class TestBuiltinRegistry:
    def test_builtin_backends_are_registered(self):
        names = available_backends()
        for expected in ("local", "gas", "bsp",
                         "cassovary", "random_walk_ppr", "topological"):
            assert expected in names

    def test_available_backends_is_sorted(self):
        names = available_backends()
        assert list(names) == sorted(names)

    def test_capabilities_lookup(self):
        capabilities = backend_capabilities("gas")
        assert capabilities.name == "gas"
        assert capabilities.simulated
        assert capabilities.distributed
        local = backend_capabilities("local")
        assert not local.simulated
        assert local.incremental


class TestRegistration:
    def test_register_lookup_and_unregister(self):
        register_backend("dummy", _DummyBackend)
        try:
            assert "dummy" in available_backends()
            backend = get_backend("dummy", flavour="spicy")
            assert isinstance(backend, _DummyBackend)
            assert backend.flavour == "spicy"
        finally:
            unregister_backend("dummy")
        assert "dummy" not in available_backends()

    def test_duplicate_registration_rejected(self):
        register_backend("dummy", _DummyBackend)
        try:
            with pytest.raises(ConfigurationError, match="already registered"):
                register_backend("dummy", _DummyBackend)
            register_backend("dummy", _DummyBackend, replace=True)
        finally:
            unregister_backend("dummy")

    def test_empty_name_rejected(self):
        with pytest.raises(ConfigurationError):
            register_backend("", _DummyBackend)

    def test_unregister_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            unregister_backend("never-registered")


class TestErrorPaths:
    def test_unknown_backend_names_available_ones(self):
        with pytest.raises(ConfigurationError, match="unknown execution backend"):
            get_backend("spark")
        with pytest.raises(ConfigurationError, match="local"):
            get_backend("spark")

    def test_unsupported_option_names_backend_and_option(self):
        with pytest.raises(ConfigurationError, match="'local'.*'cluster'"):
            get_backend("local", cluster=object())

    def test_unsupported_option_lists_accepted_options(self):
        with pytest.raises(ConfigurationError, match="cluster"):
            get_backend("gas", warp_speed=9)

    def test_run_before_prepare_raises(self, triangle_graph):
        backend = get_backend("local")
        with pytest.raises(EngineError, match="prepared"):
            backend.run()
