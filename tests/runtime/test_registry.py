"""Registry registration, lookup and error paths."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, EngineError
from repro.runtime import (
    BackendCapabilities,
    ExecutionBackend,
    RunReport,
    available_backends,
    available_components,
    backend_capabilities,
    component_families,
    component_options,
    get_backend,
    get_component,
    match_component_name,
    normalize_component_name,
    register_backend,
    register_component,
    unregister_backend,
    unregister_component,
)


class _DummyBackend(ExecutionBackend):
    name = "dummy"

    def __init__(self, flavour: str = "plain") -> None:
        super().__init__()
        self.flavour = flavour

    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(name=self.name, options=("flavour",))

    def run(self, vertices=None) -> RunReport:
        graph, _ = self._require_prepared()
        targets = self._target_vertices(vertices)
        return RunReport(
            backend=self.name,
            predictions={u: [] for u in targets},
            scores={u: {} for u in targets},
        )


class TestBuiltinRegistry:
    def test_builtin_backends_are_registered(self):
        names = available_backends()
        for expected in ("local", "gas", "bsp",
                         "cassovary", "random_walk_ppr", "topological"):
            assert expected in names

    def test_available_backends_is_sorted(self):
        names = available_backends()
        assert list(names) == sorted(names)

    def test_capabilities_lookup(self):
        capabilities = backend_capabilities("gas")
        assert capabilities.name == "gas"
        assert capabilities.simulated
        assert capabilities.distributed
        local = backend_capabilities("local")
        assert not local.simulated
        assert local.incremental


class TestRegistration:
    def test_register_lookup_and_unregister(self):
        register_backend("dummy", _DummyBackend)
        try:
            assert "dummy" in available_backends()
            backend = get_backend("dummy", flavour="spicy")
            assert isinstance(backend, _DummyBackend)
            assert backend.flavour == "spicy"
        finally:
            unregister_backend("dummy")
        assert "dummy" not in available_backends()

    def test_duplicate_registration_rejected(self):
        register_backend("dummy", _DummyBackend)
        try:
            with pytest.raises(ConfigurationError, match="already registered"):
                register_backend("dummy", _DummyBackend)
            register_backend("dummy", _DummyBackend, replace=True)
        finally:
            unregister_backend("dummy")

    def test_empty_name_rejected(self):
        with pytest.raises(ConfigurationError):
            register_backend("", _DummyBackend)

    def test_unregister_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            unregister_backend("never-registered")


class TestErrorPaths:
    def test_unknown_backend_names_available_ones(self):
        with pytest.raises(ConfigurationError, match="unknown execution backend"):
            get_backend("spark")
        with pytest.raises(ConfigurationError, match="local"):
            get_backend("spark")

    def test_unsupported_option_names_backend_and_option(self):
        with pytest.raises(ConfigurationError, match="'local'.*'cluster'"):
            get_backend("local", cluster=object())

    def test_unsupported_option_lists_accepted_options(self):
        with pytest.raises(ConfigurationError, match="cluster"):
            get_backend("gas", warp_speed=9)

    def test_run_before_prepare_raises(self, triangle_graph):
        backend = get_backend("local")
        with pytest.raises(EngineError, match="prepared"):
            backend.run()


class TestNameNormalization:
    def test_dash_and_underscore_are_interchangeable(self):
        assert normalize_component_name("random-walk-ppr") == "random_walk_ppr"
        backend = get_backend("random-walk-ppr")
        assert backend.name == "random_walk_ppr"

    def test_case_is_preserved(self):
        assert normalize_component_name("Sum") == "Sum"
        assert match_component_name("sum", ["Sum"]) is None

    def test_match_prefers_exact_over_fold(self):
        assert match_component_name("a-b", ["a_b", "a-b"]) == "a-b"
        assert match_component_name("a-b", ["a_b"]) == "a_b"

    def test_fold_collision_with_other_name_rejected(self):
        register_backend("fold_probe", _DummyBackend)
        try:
            with pytest.raises(ConfigurationError, match="normalizes to"):
                register_backend("fold-probe", _DummyBackend)
        finally:
            unregister_backend("fold_probe")
        assert "fold_probe" not in available_backends()


class _RequiresOptionBackend(_DummyBackend):
    name = "needs-cluster"

    def __init__(self, cluster) -> None:
        super().__init__()
        self.cluster = cluster


class _ClassCapabilitiesBackend(_DummyBackend):
    name = "class-capabilities"

    def __init__(self, cluster) -> None:
        super().__init__()
        self.cluster = cluster

    @classmethod
    def capabilities(cls) -> BackendCapabilities:
        return BackendCapabilities(name=cls.name, options=("cluster",))


class TestBuiltinReseed:
    """Unregistering a built-in must revert, not remove it forever."""

    def test_unregistered_builtin_comes_back(self):
        unregister_backend("gas")
        assert "gas" in available_backends()
        backend = get_backend("gas")
        assert backend.name == "gas"

    def test_replace_then_unregister_reverts_to_builtin(self):
        register_backend("gas", _DummyBackend, replace=True)
        try:
            assert isinstance(get_backend("gas"), _DummyBackend)
        finally:
            unregister_backend("gas")
        assert not isinstance(get_backend("gas"), _DummyBackend)
        assert get_backend("gas").name == "gas"

    def test_unregister_twice_is_harmless_for_builtins(self):
        unregister_backend("local")
        unregister_backend("local")
        assert get_backend("local").name == "local"

    def test_every_builtin_capability_is_resolvable(self):
        for name in available_backends():
            assert backend_capabilities(name).name


class TestCapabilitiesWithoutConstruction:
    def test_required_options_raise_configuration_error(self):
        register_backend("needs-cluster", _RequiresOptionBackend)
        try:
            with pytest.raises(ConfigurationError, match="cluster"):
                backend_capabilities("needs-cluster")
        finally:
            unregister_backend("needs-cluster")

    def test_classmethod_capabilities_skip_construction(self):
        register_backend("class-capabilities", _ClassCapabilitiesBackend)
        try:
            capabilities = backend_capabilities("class-capabilities")
            assert capabilities.name == "class-capabilities"
        finally:
            unregister_backend("class-capabilities")


class TestComponentFamilies:
    def test_all_families_are_declared(self):
        families = component_families()
        for expected in ("engine", "similarity", "aggregator", "combinator",
                         "sampler", "dataset", "workload"):
            assert expected in families

    def test_unknown_family_lists_available_families(self):
        with pytest.raises(ConfigurationError, match="component family"):
            get_component("universe", "everything")

    def test_component_getters_share_the_engine_namespace(self):
        assert available_components("engine") == available_backends()

    def test_fingerprint_cache_returns_same_instance(self):
        first = get_component("combinator", "linear", alpha=0.3)
        second = get_component("combinator", "linear", alpha=0.3)
        assert first is second
        other = get_component("combinator", "linear", alpha=0.4)
        assert other is not first

    def test_cache_evicted_on_reregistration(self):
        cached = get_component("combinator", "linear", alpha=0.35)
        register_component("combinator", "linear",
                           lambda alpha=0.9: cached, replace=True)
        try:
            pass
        finally:
            unregister_component("combinator", "linear")
        fresh = get_component("combinator", "linear", alpha=0.35)
        assert fresh is not cached

    def test_engines_are_not_cached(self):
        assert get_backend("local") is not get_backend("local")

    def test_value_components_ignore_the_cache(self):
        from repro.snaple.similarity import jaccard

        assert get_component("similarity", "jaccard") is jaccard

    def test_component_options_lists_factory_keywords(self):
        options = component_options("engine", "gas")
        assert options is not None
        assert "cluster" in options

    def test_value_component_rejects_options(self):
        with pytest.raises(ConfigurationError, match="no options"):
            get_component("similarity", "jaccard", scale=2)

    def test_dataset_family_serves_analogs_and_generators(self):
        names = available_components("dataset")
        assert "orkut" in names
        assert "powerlaw_cluster" in names
        graph = get_component("dataset", "erdos_renyi",
                              num_vertices=30, edge_probability=0.1, seed=1)
        assert graph.num_vertices == 30
