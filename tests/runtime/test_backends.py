"""Cross-backend prediction parity and RunReport normalization."""

from __future__ import annotations

import math

import pytest

from repro.gas.cluster import TYPE_I, cluster_of
from repro.runtime import get_backend
from repro.snaple.config import SnapleConfig
from repro.snaple.predictor import SnapleLinkPredictor


@pytest.fixture
def parity_config() -> SnapleConfig:
    """Deterministic configuration: no probabilistic truncation involved."""
    return SnapleConfig(k_local=10, truncation_threshold=math.inf, seed=5)


class TestCrossBackendParity:
    def test_local_and_gas_agree(self, small_social_graph, parity_config):
        predictor = SnapleLinkPredictor(parity_config)
        local = predictor.predict(small_social_graph, backend="local")
        gas = predictor.predict(small_social_graph, backend="gas")
        assert local.predictions == gas.predictions

    def test_local_and_bsp_agree(self, small_social_graph, parity_config):
        predictor = SnapleLinkPredictor(parity_config)
        local = predictor.predict(small_social_graph, backend="local")
        bsp = predictor.predict(small_social_graph, backend="bsp")
        assert local.predictions == bsp.predictions

    def test_gas_agreement_across_cluster_sizes(self, small_social_graph,
                                                parity_config):
        predictor = SnapleLinkPredictor(parity_config)
        single = predictor.predict(small_social_graph, backend="gas")
        distributed = predictor.predict(
            small_social_graph, backend="gas", cluster=cluster_of(TYPE_I, 8)
        )
        assert single.predictions == distributed.predictions


class TestRunReportNormalization:
    def test_local_report_fields(self, small_social_graph, parity_config):
        report = SnapleLinkPredictor(parity_config).predict(
            small_social_graph, backend="local"
        )
        assert report.backend == "local"
        assert report.wall_clock_seconds > 0
        assert report.simulated_seconds is None
        assert report.network_bytes is None
        assert report.peak_memory_bytes is None
        assert report.supersteps is None
        assert report.time_seconds == report.wall_clock_seconds

    def test_gas_report_fields(self, small_social_graph, parity_config):
        report = SnapleLinkPredictor(parity_config).predict(
            small_social_graph, backend="gas", cluster=cluster_of(TYPE_I, 4)
        )
        assert report.backend == "gas"
        assert report.simulated_seconds > 0
        assert report.network_bytes > 0
        assert report.peak_memory_bytes > 0
        assert report.supersteps == 3
        assert report.time_seconds == report.simulated_seconds
        assert report.native is not None

    def test_bsp_report_fields(self, small_social_graph, parity_config):
        report = SnapleLinkPredictor(parity_config).predict(
            small_social_graph, backend="bsp", cluster=cluster_of(TYPE_I, 4)
        )
        assert report.backend == "bsp"
        assert report.simulated_seconds > 0
        assert report.network_bytes > 0
        assert report.supersteps == 4

    def test_cassovary_reports_simulated_time(self, small_social_graph):
        report = SnapleLinkPredictor().predict(
            small_social_graph, backend="cassovary", num_walks=10
        )
        assert report.simulated_seconds is not None
        assert report.extra["walk_steps"] > 0

    def test_random_walk_ppr_reports_wall_clock_only(self, small_social_graph):
        report = SnapleLinkPredictor().predict(
            small_social_graph, backend="random_walk_ppr", num_walks=10
        )
        assert report.simulated_seconds is None
        assert report.extra["walk_steps"] > 0

    def test_topological_backend_scores_candidates(self, small_social_graph):
        report = SnapleLinkPredictor().predict(
            small_social_graph, backend="topological", score="jaccard"
        )
        assert report.backend == "topological"
        assert any(report.predictions.values())

    def test_report_helpers(self, small_social_graph, parity_config):
        report = SnapleLinkPredictor(parity_config).predict(
            small_social_graph, backend="local"
        )
        edges = report.predicted_edges()
        assert all(isinstance(edge, tuple) and len(edge) == 2 for edge in edges)
        for vertex, targets in report.predictions.items():
            expected = targets[0] if targets else None
            assert report.top_prediction(vertex) == expected

    def test_to_dict_is_json_ready(self, small_social_graph, parity_config):
        import json

        report = SnapleLinkPredictor(parity_config).predict(
            small_social_graph, backend="gas"
        )
        payload = report.to_dict()
        assert payload["backend"] == "gas"
        assert payload["supersteps"] == 3
        assert "scores" not in payload
        json.dumps(payload)
        with_scores = report.to_dict(include_scores=True)
        assert "scores" in with_scores
        json.dumps(with_scores)


class TestVertexSubsets:
    def test_local_vertex_subset_matches_full_run(self, small_social_graph,
                                                  parity_config):
        predictor = SnapleLinkPredictor(parity_config)
        subset = [0, 1, 2, 3, 4]
        full = predictor.predict(small_social_graph, backend="local")
        restricted = predictor.predict(small_social_graph, backend="local",
                                       vertices=subset)
        assert sorted(restricted.predictions) == subset
        for u in subset:
            assert restricted.predictions[u] == full.predictions[u]

    def test_gas_vertex_subset_restricts_predictions(self, small_social_graph,
                                                     parity_config):
        # The GAS engine restricts *all* program steps to the active set, so
        # a subset run is a smaller computation, not a filtered full run.
        predictor = SnapleLinkPredictor(parity_config)
        subset = [0, 1, 2, 3, 4]
        restricted = predictor.predict(small_social_graph, backend="gas",
                                       vertices=subset)
        assert sorted(restricted.predictions) == subset

    def test_bsp_vertex_subset_filters_output(self, small_social_graph,
                                              parity_config):
        predictor = SnapleLinkPredictor(parity_config)
        subset = [3, 7, 11]
        restricted = predictor.predict(small_social_graph, backend="bsp",
                                       vertices=subset)
        assert sorted(restricted.predictions) == subset


class TestDirectBackendUse:
    def test_backend_predict_convenience(self, small_social_graph,
                                         parity_config):
        backend = get_backend("local")
        report = backend.predict(small_social_graph, parity_config)
        via_predictor = SnapleLinkPredictor(parity_config).predict(
            small_social_graph, backend="local"
        )
        assert report.predictions == via_predictor.predictions

    def test_incremental_local_runs_are_consistent(self, small_social_graph,
                                                   parity_config):
        backend = get_backend("local").prepare(small_social_graph, parity_config)
        first = backend.run(vertices=[0, 1])
        second = backend.run(vertices=[2, 3])
        full = backend.run()
        assert first.predictions[0] == full.predictions[0]
        assert second.predictions[3] == full.predictions[3]

    def test_local_prepare_time_billed_once(self, small_social_graph,
                                            parity_config):
        backend = get_backend("local").prepare(small_social_graph, parity_config)
        first = backend.run(vertices=[0])
        second = backend.run(vertices=[1])
        prepare_seconds = first.extra["prepare_seconds"]
        assert prepare_seconds == second.extra["prepare_seconds"]
        # The first report carries the preparation cost; later batches only
        # bill their own per-vertex work.
        assert first.wall_clock_seconds >= prepare_seconds
        assert second.wall_clock_seconds < first.wall_clock_seconds
