"""Lifecycle and parity tests for the out-of-core (memmap) state plane.

:mod:`repro.runtime.ooc` swaps the parallel executor's segment substrate
from POSIX shared memory to file-backed mappings so peak RSS stays bounded
on graphs larger than RAM.  Pinned here:

* **lifecycle** — every spool directory a run creates is removed again
  (success, crash, or resume), and predictors release their pool lease on
  ``close()``;
* **parity** — predictions, scores and accounting are bit-identical across
  the in-RAM, shm and memmap tiers, across backends and worker counts;
* **portability** — checkpoints carry the same ``columnar`` flavour on
  every tier, so a run checkpointed under one tier resumes under another.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import EngineError, WorkerCrashError
from repro.runtime.ooc import (
    FileSegment,
    MemmapColumnAllocator,
    MemmapGraphHandle,
    MemmapRegistry,
    list_spool_dirs,
    ooc_enabled,
    spool_graph,
)
from repro.runtime.parallel import WorkerPoolLease
from repro.runtime.shm import AttachmentCache, state_slice_handle
from repro.runtime.state import (
    FieldKind,
    StateField,
    StateSchema,
    StateStore,
)
from repro.graph.digraph import CSR_ARRAY_NAMES
from repro.graph.storage import load_graph_memmap, save_graph_memmap
from repro.snaple.config import SnapleConfig
from repro.snaple.predictor import SnapleLinkPredictor


def parity_graph(random_graph):
    return random_graph(150, 3, 0.3, seed=11)


def parity_config() -> SnapleConfig:
    return SnapleConfig.paper_default(seed=3, k_local=10)


def assert_no_leaked_spools() -> None:
    assert list_spool_dirs() == [], (
        "spool directories leaked: " + ", ".join(list_spool_dirs())
    )


@pytest.fixture(autouse=True)
def spool_leak_guard(tmp_path, monkeypatch):
    """Every test spools under its own tmp dir and must leave it clean."""
    spool_parent = tmp_path / "spool"
    spool_parent.mkdir()
    monkeypatch.setenv("SNAPLE_OOC_DIR", str(spool_parent))
    assert_no_leaked_spools()
    yield
    assert_no_leaked_spools()


@pytest.fixture
def ooc_env(monkeypatch):
    monkeypatch.setenv("SNAPLE_OOC", "1")


# ----------------------------------------------------------------------
# FileSegment / MemmapRegistry units
# ----------------------------------------------------------------------
class TestFileSegment:
    def test_create_write_attach_read(self, tmp_path):
        path = tmp_path / "seg.bin"
        writer = FileSegment(path, 64, create=True)
        np.frombuffer(writer.buf, dtype=np.int64)[:] = np.arange(8)
        reader = FileSegment(path)
        np.testing.assert_array_equal(
            np.frombuffer(reader.buf, dtype=np.int64), np.arange(8))
        reader.close()
        writer.close()
        writer.unlink()
        assert not path.exists()

    def test_name_is_absolute_path(self, tmp_path):
        segment = FileSegment(tmp_path / "seg.bin", 8, create=True)
        try:
            assert segment.name == str(tmp_path / "seg.bin")
            assert segment.size == 8
        finally:
            segment.close()
            segment.unlink()

    def test_create_requires_size(self, tmp_path):
        with pytest.raises(ValueError):
            FileSegment(tmp_path / "seg.bin", create=True)

    def test_create_refuses_existing_file(self, tmp_path):
        path = tmp_path / "seg.bin"
        path.write_bytes(b"x")
        with pytest.raises(FileExistsError):
            FileSegment(path, 8, create=True)

    def test_close_raises_while_views_live(self, tmp_path):
        segment = FileSegment(tmp_path / "seg.bin", 64, create=True)
        view = np.frombuffer(segment.buf, dtype=np.int64)
        with pytest.raises(BufferError):
            segment.close()
        del view
        segment.close()
        segment.unlink()

    def test_unlink_is_idempotent(self, tmp_path):
        segment = FileSegment(tmp_path / "seg.bin", 8, create=True)
        segment.close()
        segment.unlink()
        segment.unlink()


class TestMemmapRegistry:
    def test_spool_dir_created_and_removed(self):
        registry = MemmapRegistry()
        spool = registry.spool_dir
        assert spool.is_dir()
        assert list_spool_dirs() == [spool.name]
        registry.close()
        assert not spool.exists()
        assert_no_leaked_spools()

    def test_close_is_idempotent(self):
        registry = MemmapRegistry()
        registry.create(128)
        registry.close()
        registry.close()

    def test_share_arrays_round_trip(self):
        cache = AttachmentCache()
        with MemmapRegistry() as registry:
            arrays = {
                "a": np.arange(10, dtype=np.int64),
                "b": np.linspace(0.0, 1.0, 5),
            }
            block = registry.share_arrays(arrays)
            assert registry.num_segments == 1
            for name, array in arrays.items():
                view = cache.view(block.specs[name])
                np.testing.assert_array_equal(view, array)
                assert not view.flags.writeable
                del view
            cache.retain(set())

    def test_column_allocator_descriptors_carry_paths(self):
        cache = AttachmentCache()
        with MemmapRegistry() as registry:
            schema = StateSchema([StateField("gamma", FieldKind.INT_LIST)])
            store = StateStore(8, schema,
                               allocator=MemmapColumnAllocator(registry))
            store.set_rows("gamma", np.array([2]), np.array([3]),
                           np.array([5, 6, 7], dtype=np.int64))
            rows = np.array([1, 2], dtype=np.int64)
            handle = state_slice_handle(store, rows, ("gamma",))
            # Descriptors carry spool-file paths, which is what makes them
            # self-routing through the worker-side attachment cache.
            for spec in handle.ragged["gamma"]:
                if spec is not None:
                    assert spec.segment.startswith(str(registry.spool_dir))
            expected = store.extract(rows, ("gamma",))
            actual = handle.materialize(cache)
            np.testing.assert_array_equal(actual.rows, expected.rows)
            np.testing.assert_array_equal(actual.ragged["gamma"][1],
                                          expected.ragged["gamma"][1])
            cache.retain(set())

    def test_attachment_cache_missing_file_raises(self):
        cache = AttachmentCache()
        with MemmapRegistry() as registry:
            handle = registry.share_array(np.arange(4, dtype=np.int64))
        with pytest.raises(EngineError, match="vanished"):
            cache.view(handle)


class TestSpoolGraph:
    def test_in_ram_graph_spooled_into_registry(self, random_graph):
        graph = parity_graph(random_graph)
        registry = MemmapRegistry()
        try:
            handle = spool_graph(registry, graph)
            assert handle.num_vertices == graph.num_vertices
            assert handle.num_edges == graph.num_edges
            assert handle.path.startswith(str(registry.spool_dir))
            loaded = handle.load()
            for name in CSR_ARRAY_NAMES:
                np.testing.assert_array_equal(
                    loaded.csr_arrays()[name], graph.csr_arrays()[name])
        finally:
            registry.close()

    def test_container_backed_graph_ships_without_copy(self, tmp_path,
                                                       random_graph):
        graph = parity_graph(random_graph)
        container = save_graph_memmap(graph, tmp_path / "g")
        mapped = load_graph_memmap(container)
        registry = MemmapRegistry()
        try:
            handle = spool_graph(registry, mapped)
            assert handle.path == str(container)
            assert not (registry.spool_dir / "graph").exists()
        finally:
            registry.close()


# ----------------------------------------------------------------------
# End-to-end parity and lifecycle
# ----------------------------------------------------------------------
class TestOutOfCoreParity:
    _reference: dict[tuple[str, int], object] = {}

    def _reference_run(self, backend, workers, random_graph):
        key = (backend, workers)
        if key not in self._reference:
            graph = parity_graph(random_graph)
            run = SnapleLinkPredictor(parity_config()).predict(
                graph, backend=backend)
            self._reference[key] = {
                "predictions": run.predictions,
                "scores": dict(run.scores),
            }
        return self._reference[key]

    @pytest.mark.parametrize("backend", ["gas", "bsp"])
    @pytest.mark.parametrize("workers", [1, 4])
    def test_memmap_tier_matches_in_ram(self, backend, workers, ooc_env,
                                        random_graph):
        graph = parity_graph(random_graph)
        reference = self._reference_run(backend, workers, random_graph)
        with SnapleLinkPredictor(parity_config()) as predictor:
            run = predictor.predict(graph, backend=backend, workers=workers)
            assert run.predictions == reference["predictions"]
            assert dict(run.scores) == reference["scores"]
            if workers > 1:
                assert run.extra["ooc_enabled"] == 1.0
                assert run.extra["shm_enabled"] == 0.0
        assert_no_leaked_spools()

    def test_container_backed_graph_runs_parallel(self, tmp_path, ooc_env,
                                                  random_graph):
        graph = parity_graph(random_graph)
        container = save_graph_memmap(graph, tmp_path / "g")
        mapped = load_graph_memmap(container)
        reference = self._reference_run("gas", 2, random_graph)
        with SnapleLinkPredictor(parity_config()) as predictor:
            run = predictor.predict(mapped, backend="gas", workers=2)
        assert run.predictions == reference["predictions"]
        assert run.extra["ooc_enabled"] == 1.0
        assert_no_leaked_spools()

    def test_ooc_takes_precedence_over_shm(self, monkeypatch, ooc_env,
                                           random_graph):
        graph = parity_graph(random_graph)
        with SnapleLinkPredictor(parity_config()) as predictor:
            run = predictor.predict(graph, backend="bsp", workers=2)
        assert run.extra["ooc_enabled"] == 1.0
        assert run.extra["shm_enabled"] == 0.0

    def test_spools_cleaned_after_worker_crash(self, fault_injector, ooc_env,
                                               random_graph):
        graph = parity_graph(random_graph)
        predictor = SnapleLinkPredictor(parity_config())
        fault = fault_injector.kill_worker(1, partition=0)
        with pytest.raises(WorkerCrashError):
            predictor.predict(graph, backend="gas", workers=2,
                              max_restarts=0, fault=fault)
        predictor.close()
        assert_no_leaked_spools()


class TestCrossTierResume:
    """A checkpoint written under one tier resumes under another."""

    def _crash_then_resume(self, write_env, resume_env, monkeypatch,
                           fault_injector, tmp_path, random_graph):
        graph = parity_graph(random_graph)
        predictor = SnapleLinkPredictor(parity_config())
        baseline = predictor.predict(graph, backend="bsp", workers=2)
        predictor.close()
        checkpoint_dir = tmp_path / "ckpt"

        for name, value in write_env.items():
            monkeypatch.setenv(name, value)
        fault = fault_injector.kill_worker(2, partition=0)
        with pytest.raises(WorkerCrashError):
            predictor.predict(graph, backend="bsp", workers=2,
                              checkpoint_dir=checkpoint_dir,
                              max_restarts=0, fault=fault)
        predictor.close()
        for name in write_env:
            monkeypatch.delenv(name)

        for name, value in resume_env.items():
            monkeypatch.setenv(name, value)
        resumed = predictor.predict(graph, backend="bsp", workers=2,
                                    resume_from=checkpoint_dir)
        predictor.close()
        assert resumed.predictions == baseline.predictions
        assert dict(resumed.scores) == dict(baseline.scores)
        assert_no_leaked_spools()

    def test_checkpoint_under_shm_resumes_under_memmap(
            self, monkeypatch, fault_injector, tmp_path, random_graph):
        self._crash_then_resume({}, {"SNAPLE_OOC": "1"}, monkeypatch,
                                fault_injector, tmp_path, random_graph)

    def test_checkpoint_under_memmap_resumes_under_shm(
            self, monkeypatch, fault_injector, tmp_path, random_graph):
        self._crash_then_resume({"SNAPLE_OOC": "1"}, {}, monkeypatch,
                                fault_injector, tmp_path, random_graph)


# ----------------------------------------------------------------------
# Worker-pool lease (satellite: pool reuse across predict() calls)
# ----------------------------------------------------------------------
class TestWorkerPoolLease:
    @pytest.mark.parametrize("env", [{}, {"SNAPLE_OOC": "1"}],
                             ids=["shm", "ooc"])
    def test_pool_reused_across_predicts(self, env, monkeypatch,
                                         random_graph):
        for name, value in env.items():
            monkeypatch.setenv(name, value)
        graph = parity_graph(random_graph)
        with SnapleLinkPredictor(parity_config()) as predictor:
            first = predictor.predict(graph, backend="gas", workers=2)
            second = predictor.predict(graph, backend="gas", workers=2)
            assert predictor.pool_spawns == 1
            assert first.predictions == second.predictions

    def test_env_change_respawns_pool(self, monkeypatch, random_graph):
        graph = parity_graph(random_graph)
        with SnapleLinkPredictor(parity_config()) as predictor:
            predictor.predict(graph, backend="gas", workers=2)
            monkeypatch.setenv("SNAPLE_OOC", "1")
            run = predictor.predict(graph, backend="gas", workers=2)
            assert predictor.pool_spawns == 2
            assert run.extra["ooc_enabled"] == 1.0

    def test_worker_count_change_respawns_pool(self, random_graph):
        graph = parity_graph(random_graph)
        with SnapleLinkPredictor(parity_config()) as predictor:
            predictor.predict(graph, backend="gas", workers=2)
            predictor.predict(graph, backend="gas", workers=3)
            assert predictor.pool_spawns == 2

    def test_close_is_idempotent_and_releases(self, ooc_env, random_graph):
        graph = parity_graph(random_graph)
        predictor = SnapleLinkPredictor(parity_config())
        predictor.predict(graph, backend="gas", workers=2)
        assert predictor.pool_spawns == 1
        predictor.close()
        predictor.close()
        assert_no_leaked_spools()
        assert predictor.pool_spawns == 0

    def test_crash_invalidates_lease(self, fault_injector, random_graph):
        graph = parity_graph(random_graph)
        with SnapleLinkPredictor(parity_config()) as predictor:
            baseline = predictor.predict(graph, backend="gas", workers=2)
            fault = fault_injector.kill_worker(1, partition=0)
            with pytest.raises(WorkerCrashError):
                predictor.predict(graph, backend="gas", workers=2,
                                  max_restarts=0, fault=fault)
            # The fault run bypassed the lease; the pooled workers are
            # still healthy and reused.
            after = predictor.predict(graph, backend="gas", workers=2)
            assert predictor.pool_spawns == 1
            assert after.predictions == baseline.predictions

    def test_lease_requires_lease_instance(self, random_graph):
        from repro.errors import ConfigurationError
        from repro.runtime.parallel import ParallelExecutor

        graph = parity_graph(random_graph)
        with pytest.raises(ConfigurationError, match="pool"):
            ParallelExecutor(graph, parity_config(), workers=2, kind="gas",
                             pool=object())

    def test_pool_option_requires_workers(self, random_graph):
        from repro.errors import ConfigurationError
        from repro.runtime import get_backend

        with pytest.raises(ConfigurationError, match="workers"):
            get_backend("gas", pool=WorkerPoolLease())

    def test_lease_context_manager(self, random_graph):
        graph = parity_graph(random_graph)
        config = parity_config()
        with WorkerPoolLease() as lease:
            first = SnapleLinkPredictor(config).predict(
                graph, backend="gas", workers=2, pool=lease)
            second = SnapleLinkPredictor(config).predict(
                graph, backend="gas", workers=2, pool=lease)
            assert lease.spawns == 1
            assert first.predictions == second.predictions
        assert_no_leaked_spools()
