"""JSON round-trip coverage for :class:`~repro.runtime.report.RunReport`.

``RunReport.to_dict`` is the machine-readable boundary of every run — the
CLI's ``--json`` output, the benchmark JSON records, and anything a driver
persists.  These tests pin that the payload (a) survives a real
``json.dumps``/``json.loads`` round trip without loss, and (b) carries the
accounting added by the parallel/state-plane/checkpoint layers: the PR 4
``extra`` state-plane keys and the checkpoint/recovery fields.
"""

from __future__ import annotations

import json

import pytest

from repro.snaple.config import SnapleConfig
from repro.snaple.predictor import SnapleLinkPredictor


def roundtrip(payload):
    """Through real JSON text and back."""
    return json.loads(json.dumps(payload))


def assert_json_clean(payload, path="$"):
    """Only JSON-native types anywhere in the payload (no numpy leaks)."""
    if isinstance(payload, dict):
        for key, value in payload.items():
            assert isinstance(key, (str, int, float, bool)) or key is None
            assert_json_clean(value, f"{path}.{key}")
    elif isinstance(payload, (list, tuple)):
        for index, value in enumerate(payload):
            assert_json_clean(value, f"{path}[{index}]")
    else:
        assert payload is None or isinstance(
            payload, (str, int, float, bool)
        ), f"non-JSON value {payload!r} of type {type(payload)} at {path}"


@pytest.fixture(scope="module")
def graph(request):
    from repro.graph.generators import powerlaw_cluster

    return powerlaw_cluster(80, 3, 0.3, seed=11)


@pytest.fixture(scope="module")
def predictor():
    return SnapleLinkPredictor(SnapleConfig.paper_default(seed=3, k_local=6))


class TestSerialReportRoundtrip:
    def test_local_report(self, graph, predictor):
        report = predictor.predict(graph, backend="local")
        payload = report.to_dict()
        assert_json_clean(payload)
        restored = roundtrip(payload)
        assert restored["backend"] == "local"
        assert restored["num_vertices"] == len(report.predictions)
        assert restored["extra"]["kernel_vectorized"] == 1.0
        assert "prepare_seconds" in restored["extra"]
        # JSON stringifies int keys; the content must survive unchanged.
        assert restored["predictions"] == {
            str(u): targets for u, targets in payload["predictions"].items()
        }

    def test_scores_included_on_request(self, graph, predictor):
        report = predictor.predict(graph, backend="local")
        payload = report.to_dict(include_scores=True)
        assert_json_clean(payload)
        restored = roundtrip(payload)
        some_vertex = next(iter(report.scores))
        assert restored["scores"][str(some_vertex)] == {
            str(candidate): score
            for candidate, score in dict(report.scores[some_vertex]).items()
        }

    def test_serial_gas_carries_state_plane_extras(self, graph, predictor):
        report = predictor.predict(graph, backend="gas")
        restored = roundtrip(report.to_dict())
        assert restored["extra"]["state_columnar"] == 1.0
        assert restored["extra"]["state_plane_peak_bytes"] > 0.0
        assert restored["simulated_seconds"] > 0.0


class TestParallelReportRoundtrip:
    def test_parallel_report_with_state_plane_keys(self, graph, predictor):
        report = predictor.predict(graph, backend="gas", workers=2)
        payload = report.to_dict()
        assert_json_clean(payload)
        restored = roundtrip(payload)
        assert restored["workers"] == 2
        assert len(restored["per_partition_seconds"]) == 2
        assert len(restored["partitions"]) == 2
        for entry in restored["partitions"]:
            assert set(entry) >= {
                "partition", "num_vertices", "num_predictions",
                "num_predicted_edges", "gather_invocations",
                "apply_invocations", "compute_seconds", "shipped_bytes",
            }
        # PR 4's per-superstep state-plane accounting.
        assert restored["extra"]["state_columnar"] == 1.0
        assert restored["extra"]["state_plane_peak_bytes"] > 0.0
        for step in range(restored["supersteps"]):
            assert f"state_plane_bytes_step{step}" in restored["extra"]
            assert f"routing_seconds_step{step}" in restored["extra"]
        assert restored["extra"]["worker_restarts"] == 0.0

    def test_checkpointed_report_fields(self, graph, predictor, tmp_path):
        report = predictor.predict(graph, backend="gas", workers=2,
                                   checkpoint_dir=tmp_path / "ckpt")
        restored = roundtrip(report.to_dict())
        assert restored["extra"]["checkpoints_written"] == 2.0
        assert restored["extra"]["checkpoint_bytes"] > 0.0
        assert restored["extra"]["checkpoint_seconds"] >= 0.0
        assert "resumed_from_superstep" not in restored["extra"]

    def test_resumed_report_fields(self, graph, predictor, tmp_path):
        first = predictor.predict(graph, backend="bsp", workers=2,
                                  checkpoint_dir=tmp_path / "ckpt")
        resumed = predictor.predict(graph, backend="bsp", workers=2,
                                    resume_from=tmp_path / "ckpt")
        restored = roundtrip(resumed.to_dict())
        assert restored["extra"]["resumed_from_superstep"] == float(
            first.supersteps
        )
        assert restored["predictions"] == {
            str(u): targets for u, targets in first.predictions.items()
        }

    def test_roundtrip_is_stable(self, graph, predictor):
        """dumps(loads(dumps(x))) == dumps(loads(x)): no drift on re-encode."""
        payload = predictor.predict(graph, backend="gas", workers=2).to_dict()
        once = roundtrip(payload)
        twice = roundtrip(once)
        assert once == twice


class TestServingReportRoundtrip:
    @pytest.fixture(scope="class")
    def serving_report(self, graph):
        from repro.serving import PredictorService, ServingConfig

        config = SnapleConfig.paper_default(seed=3, k_local=6)
        with PredictorService(graph, config,
                              serving=ServingConfig(workers=2,
                                                    compact_every=1)
                              ) as service:
            service.top_k(0)
            service.top_k(0)  # result-cache hit
            u = next(w for w in range(service.num_vertices)
                     if service.top_k(w).predicted)
            service.ingest_edge(u, service.top_k(u).predicted[0])
            return service.report()

    def test_serving_extras(self, serving_report):
        payload = serving_report.to_dict()
        assert_json_clean(payload)
        restored = roundtrip(payload)
        assert restored["backend"] == "serving"
        extra = restored["extra"]
        assert extra["requests_served"] >= 3.0
        assert extra["edges_ingested"] == 1.0
        assert extra["dirty_vertices_rescored"] > 0.0
        assert extra["cache_hits"] >= 1.0
        assert extra["cache_misses"] >= 1.0
        assert extra["compactions"] == 1.0
        assert extra["delta_edges"] == 0.0
        assert restored["workers"] == 2
        assert restored["wall_clock_seconds"] > 0.0

    def test_serving_scores_roundtrip(self, serving_report):
        payload = serving_report.to_dict(include_scores=True)
        assert_json_clean(payload)
        restored = roundtrip(payload)
        some_vertex = next(
            u for u, targets in serving_report.predictions.items() if targets
        )
        assert restored["scores"][str(some_vertex)] == {
            str(candidate): score
            for candidate, score in serving_report.scores[some_vertex].items()
        }
