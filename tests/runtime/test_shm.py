"""Lifecycle and parity tests for the shared-memory state plane.

The zero-copy transport (:mod:`repro.runtime.shm`) maps the CSR graph and
the columnar state columns into ``multiprocessing.shared_memory`` segments
so parallel supersteps exchange descriptors instead of pickled arrays.
Three guarantees are pinned here:

* **lifecycle** — every segment the coordinator creates is unlinked again,
  whether the run succeeds, a worker crashes, or the run resumes from a
  checkpoint; ``list_segments()`` doubles as the CI leak check;
* **parity** — predictions, scores and deterministic accounting are
  bit-identical across the three state planes (dict, columnar-pickled,
  columnar-shm) and across worker counts;
* **economy** — the bytes actually crossing the pipe shrink when the
  transport switches from pickled slices to descriptors.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import EngineError, WorkerCrashError
from repro.runtime.shm import (
    AttachmentCache,
    ShmColumnAllocator,
    ShmMessageRange,
    ShmRegistry,
    attach_graph,
    list_segments,
    message_block_handle,
    share_graph,
    shm_available,
    state_slice_handle,
)
from repro.runtime.state import (
    FieldKind,
    MessageBlockBuilder,
    StateField,
    StateSchema,
    StateStore,
)
from repro.snaple.config import SnapleConfig
from repro.snaple.predictor import SnapleLinkPredictor

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="platform lacks POSIX shared memory"
)


def parity_graph(random_graph):
    return random_graph(150, 3, 0.3, seed=11)


def parity_config() -> SnapleConfig:
    return SnapleConfig.paper_default(seed=3, k_local=10)


def assert_no_leaked_segments() -> None:
    assert list_segments() == [], (
        "shared-memory segments leaked: " + ", ".join(list_segments())
    )


@pytest.fixture(autouse=True)
def shm_leak_guard():
    """Every test in this module must leave /dev/shm clean."""
    assert_no_leaked_segments()
    yield
    assert_no_leaked_segments()


# ----------------------------------------------------------------------
# Registry lifecycle
# ----------------------------------------------------------------------
class TestRegistryLifecycle:
    def test_create_and_close_unlinks_everything(self):
        registry = ShmRegistry()
        registry.create(1024)
        registry.create(4096)
        assert registry.num_segments == 2
        assert len(list_segments()) == 2
        registry.close()
        assert registry.num_segments == 0
        assert_no_leaked_segments()

    def test_context_manager_cleans_up_on_error(self):
        with pytest.raises(RuntimeError):
            with ShmRegistry() as registry:
                registry.create(512)
                raise RuntimeError("boom")
        assert_no_leaked_segments()

    def test_release_unlinks_one_segment(self):
        with ShmRegistry() as registry:
            keep = registry.create(64)
            drop = registry.create(64)
            registry.release(drop.name)
            assert registry.num_segments == 1
            assert list_segments() == [keep.name]

    def test_close_is_idempotent(self):
        registry = ShmRegistry()
        registry.create(64)
        registry.close()
        registry.close()

    def test_release_with_live_view_defers_close_but_unlinks(self):
        with ShmRegistry() as registry:
            segment = registry.create(256)
            view = np.frombuffer(segment.buf, dtype=np.uint8)
            registry.release(segment.name)
            # The name is gone (no leak) even though the view still reads.
            assert_no_leaked_segments()
            assert view[0] == 0

    def test_accounting(self):
        with ShmRegistry() as registry:
            registry.create(100)
            registry.create(200)
            assert registry.created_bytes == 300
            assert registry.live_bytes() == 300

    def test_segment_names_carry_the_leak_check_prefix(self):
        with ShmRegistry() as registry:
            segment = registry.create(16)
            assert segment.name.startswith("snpl")
            assert len(segment.name) <= 31  # macOS shm name limit


class TestArraySharing:
    def test_share_array_roundtrip(self):
        data = np.arange(37, dtype=np.float64) * 1.5
        cache = AttachmentCache()
        with ShmRegistry() as registry:
            handle = registry.share_array(data)
            view = cache.view(handle)
            np.testing.assert_array_equal(view, data)
            assert not view.flags.writeable
            del view  # release the buffer export so the mapping can close
            cache.retain(set())

    def test_share_arrays_packs_one_segment(self):
        arrays = {
            "a": np.arange(10, dtype=np.int64),
            "b": np.linspace(0.0, 1.0, 7),
            "c": np.array([], dtype=np.int32),
        }
        cache = AttachmentCache()
        with ShmRegistry() as registry:
            block = registry.share_arrays(arrays)
            assert registry.num_segments == 1
            for key, original in arrays.items():
                np.testing.assert_array_equal(
                    cache.view(block.specs[key]), original
                )
            cache.retain(set())

    def test_attaching_a_released_segment_raises_engine_error(self):
        cache = AttachmentCache()
        with ShmRegistry() as registry:
            handle = registry.share_array(np.arange(4))
            registry.release(handle.segment)
            with pytest.raises(EngineError, match="vanished"):
                cache.view(handle)


class TestGraphSharing:
    def test_attached_graph_matches_original(self, random_graph):
        graph = parity_graph(random_graph)
        cache = AttachmentCache()
        with ShmRegistry() as registry:
            handle = share_graph(registry, graph)
            attached = attach_graph(handle, cache)
            assert attached.num_vertices == graph.num_vertices
            assert attached.num_edges == graph.num_edges
            for u in range(0, graph.num_vertices, 17):
                np.testing.assert_array_equal(
                    attached.out_neighbors(u), graph.out_neighbors(u)
                )
                np.testing.assert_array_equal(
                    attached.in_neighbors(u), graph.in_neighbors(u)
                )
            # Drop the cache's pinned mapping before the registry unlinks.
            cache._pinned.clear()
            del attached
            cache.retain(set())


# ----------------------------------------------------------------------
# Shm-backed StateStore columns and slice handles
# ----------------------------------------------------------------------
def _parity_schema() -> StateSchema:
    return StateSchema([
        StateField("gamma", FieldKind.INT_LIST),
        StateField("sims", FieldKind.INT_FLOAT_MAP),
    ])


def _fill_store(store: StateStore, seed: int = 5) -> None:
    rng = np.random.default_rng(seed)
    for vertex in range(store.num_vertices):
        size = int(rng.integers(0, 9))
        ids = np.sort(rng.choice(200, size=size, replace=False))
        store.set_rows("gamma", np.array([vertex]), np.array([size]),
                       ids.astype(np.int64))
        store.set_rows("sims", np.array([vertex]), np.array([size]),
                       ids.astype(np.int64), rng.random(size))


class TestShmStateStore:
    def _store(self, registry: ShmRegistry) -> StateStore:
        return StateStore(40, _parity_schema(),
                          allocator=ShmColumnAllocator(registry))

    def test_slice_handle_materializes_like_extract(self):
        cache = AttachmentCache()
        with ShmRegistry() as registry:
            store = self._store(registry)
            _fill_store(store)
            rows = np.array([3, 7, 11, 29], dtype=np.int64)
            expected = store.extract(rows, ("gamma", "sims"))
            handle = state_slice_handle(store, rows, ("gamma", "sims"))
            actual = handle.materialize(cache)
            np.testing.assert_array_equal(actual.rows, expected.rows)
            for name in ("gamma", "sims"):
                exp_counts, exp_ids, exp_vals, exp_present = \
                    expected.ragged[name]
                act_counts, act_ids, act_vals, act_present = \
                    actual.ragged[name]
                np.testing.assert_array_equal(act_counts, exp_counts)
                np.testing.assert_array_equal(act_present, exp_present)
                np.testing.assert_array_equal(act_ids, exp_ids)
                if exp_vals is None:
                    assert act_vals is None
                else:
                    np.testing.assert_array_equal(act_vals, exp_vals)
            # Descriptors travel, not arrays: the transport payload is just
            # the row-index vector.
            assert handle.transport_nbytes() == rows.nbytes
            cache.retain(set())
            del store

    def test_snapshot_copies_out_of_shared_memory(self):
        registry = ShmRegistry()
        store = self._store(registry)
        _fill_store(store)
        snapshot = store.snapshot()
        column = store._column("sims")
        _counts, snap_ids, snap_vals, _present = snapshot.ragged["sims"]
        assert not np.shares_memory(snap_ids, column._ids)
        assert not np.shares_memory(snap_vals, column._vals)
        before = tuple(array.copy() if array is not None else None
                       for array in store.field_csr("sims"))
        registry.close()
        # The snapshot (what checkpoints persist) survives the unlink.
        restored = StateStore(40, _parity_schema())
        restored.merge(snapshot)
        after = restored.field_csr("sims")
        for expected, actual in zip(before, after):
            np.testing.assert_array_equal(actual, expected)

    def test_growth_migrates_buffers_without_leaking(self):
        with ShmRegistry() as registry:
            store = self._store(registry)
            rng = np.random.default_rng(9)
            # Repeated writes force _reserve/_maybe_compact to reallocate
            # buffers many times over; every stale segment must be released.
            for _ in range(6):
                for vertex in range(40):
                    size = int(rng.integers(1, 40))
                    ids = np.sort(rng.choice(500, size=size, replace=False))
                    store.set_rows("sims", np.array([vertex]),
                                   np.array([size]), ids.astype(np.int64),
                                   rng.random(size))
            # Only the registry's live segments remain in /dev/shm.
            assert set(list_segments()) == set(registry._segments)
            del store
        assert_no_leaked_segments()


class TestMessageBlockHandle:
    def test_range_materializes_exact_slices(self):
        cache = AttachmentCache()
        kinds = ("register", "gamma", "sims")
        rng = np.random.default_rng(3)
        builder = MessageBlockBuilder(kinds)
        for sender in range(30):
            size = int(rng.integers(1, 6))
            ids = np.sort(rng.choice(90, size=size, replace=False))
            builder.append(sender, (sender * 7) % 12, "gamma",
                           ids=ids.tolist(), vals=rng.random(size).tolist())
        block = builder.build()
        with ShmRegistry() as registry:
            handle = message_block_handle(registry, block)
            cuts = [0, 17, block.num_messages]
            for lo, hi in zip(cuts, cuts[1:]):
                sub = ShmMessageRange(kinds, handle, lo, hi).materialize(cache)
                expected = block.take(np.arange(lo, hi, dtype=np.int64))
                for name in ("sender", "receiver", "kind", "ids_indptr",
                             "ids", "vals_indptr", "vals"):
                    np.testing.assert_array_equal(
                        getattr(sub, name), getattr(expected, name)
                    )
                assert sub.kinds == expected.kinds
            cache.retain(set())


# ----------------------------------------------------------------------
# End-to-end lifecycle through the parallel executor
# ----------------------------------------------------------------------
class TestRunLifecycle:
    @pytest.mark.parametrize("backend", ["gas", "bsp"])
    def test_no_segments_after_successful_run(self, backend, random_graph):
        graph = parity_graph(random_graph)
        with SnapleLinkPredictor(parity_config()) as predictor:
            report = predictor.predict(graph, backend=backend, workers=2)
            assert report.extra.get("shm_enabled") == 1.0
            assert report.extra.get("transport_bytes", 0.0) > 0.0
        # Closing the predictor releases the pool lease and its graph plane.
        assert_no_leaked_segments()

    def test_no_segments_after_worker_crash(self, fault_injector,
                                            random_graph):
        graph = parity_graph(random_graph)
        predictor = SnapleLinkPredictor(parity_config())
        fault = fault_injector.kill_worker(1, partition=0)
        with pytest.raises(WorkerCrashError):
            predictor.predict(graph, backend="gas", workers=2,
                              max_restarts=0, fault=fault)
        predictor.close()
        assert_no_leaked_segments()

    def test_no_segments_after_crash_recovery(self, fault_injector, tmp_path,
                                              random_graph):
        graph = parity_graph(random_graph)
        predictor = SnapleLinkPredictor(parity_config())
        baseline = predictor.predict(graph, backend="gas", workers=2)
        fault = fault_injector.kill_worker(1, partition=1)
        recovered = predictor.predict(
            graph, backend="gas", workers=2,
            checkpoint_dir=tmp_path / "ckpt", fault=fault,
        )
        assert recovered.extra["worker_restarts"] == 1.0
        assert recovered.predictions == baseline.predictions
        predictor.close()
        assert_no_leaked_segments()

    def test_no_segments_after_checkpoint_resume(self, fault_injector,
                                                 tmp_path, random_graph):
        graph = parity_graph(random_graph)
        predictor = SnapleLinkPredictor(parity_config())
        baseline = predictor.predict(graph, backend="bsp", workers=2)
        checkpoint_dir = tmp_path / "ckpt"
        fault = fault_injector.kill_worker(2, partition=0)
        with pytest.raises(WorkerCrashError):
            predictor.predict(graph, backend="bsp", workers=2,
                              checkpoint_dir=checkpoint_dir,
                              max_restarts=0, fault=fault)
        predictor.close()
        assert_no_leaked_segments()
        resumed = predictor.predict(graph, backend="bsp", workers=2,
                                    resume_from=checkpoint_dir)
        assert resumed.predictions == baseline.predictions
        assert dict(resumed.scores) == dict(baseline.scores)
        predictor.close()
        assert_no_leaked_segments()

    def test_no_shm_escape_hatch(self, monkeypatch, random_graph):
        graph = parity_graph(random_graph)
        predictor = SnapleLinkPredictor(parity_config())
        with_shm = predictor.predict(graph, backend="gas", workers=2)
        monkeypatch.setenv("SNAPLE_NO_SHM", "1")
        without = predictor.predict(graph, backend="gas", workers=2)
        assert with_shm.extra["shm_enabled"] == 1.0
        assert without.extra["shm_enabled"] == 0.0
        assert without.predictions == with_shm.predictions
        assert dict(without.scores) == dict(with_shm.scores)
        predictor.close()
        assert_no_leaked_segments()

    @pytest.mark.parametrize("backend", ["gas", "bsp"])
    def test_descriptor_transport_ships_fewer_bytes(self, backend,
                                                    monkeypatch,
                                                    random_graph):
        graph = parity_graph(random_graph)
        predictor = SnapleLinkPredictor(parity_config())
        shm_run = predictor.predict(graph, backend=backend, workers=2)
        monkeypatch.setenv("SNAPLE_NO_SHM", "1")
        pickled = predictor.predict(graph, backend=backend, workers=2)
        assert shm_run.extra["transport_bytes"] < \
            pickled.extra["transport_bytes"]
        # The accounting metric (shipped boundary bytes) is
        # transport-independent: both runs must agree exactly.
        for left, right in zip(shm_run.partition_reports,
                               pickled.partition_reports):
            assert left.shipped_bytes == right.shipped_bytes


# ----------------------------------------------------------------------
# Three-plane parity grid
# ----------------------------------------------------------------------
@pytest.fixture(params=["dict", "columnar", "shm"])
def state_plane(request, monkeypatch):
    """dict / columnar-pickled / columnar-shm, via the two escape hatches."""
    monkeypatch.delenv("SNAPLE_DICT_STATE", raising=False)
    monkeypatch.delenv("SNAPLE_NO_SHM", raising=False)
    if request.param == "dict":
        monkeypatch.setenv("SNAPLE_DICT_STATE", "1")
    elif request.param == "columnar":
        monkeypatch.setenv("SNAPLE_NO_SHM", "1")
    return request.param


class TestStatePlaneParityGrid:
    """{dict, columnar, shm} × {gas, bsp} × {1, 4 workers}: one answer."""

    _reference: dict[tuple[str, int], object] = {}

    @pytest.mark.parametrize("backend", ["gas", "bsp"])
    @pytest.mark.parametrize("workers", [1, 4])
    def test_grid_cell_matches_reference(self, backend, workers, state_plane,
                                         random_graph):
        graph = parity_graph(random_graph)
        with SnapleLinkPredictor(parity_config()) as predictor:
            run = predictor.predict(graph, backend=backend, workers=workers)
        key = (backend, workers)
        reference = self._reference.setdefault(
            key, {"predictions": run.predictions,
                  "scores": dict(run.scores),
                  "supersteps": run.supersteps}
        )
        assert run.predictions == reference["predictions"]
        assert dict(run.scores) == reference["scores"]
        assert run.supersteps == reference["supersteps"]
        # shipped_bytes accounting is columnar-specific (the dict plane
        # charges pickled payload sizes); within the columnar family the
        # shm and pickled transports must agree exactly.
        if state_plane != "dict":
            accounting = [
                (p.gather_invocations, p.apply_invocations, p.shipped_bytes)
                for p in run.partition_reports
            ]
            columnar_key = ("columnar",) + key
            columnar_ref = self._reference.setdefault(columnar_key,
                                                      accounting)
            assert accounting == columnar_ref
        if workers > 1 and state_plane == "shm":
            assert run.extra["shm_enabled"] == 1.0
        assert_no_leaked_segments()
