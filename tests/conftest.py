"""Shared fixtures for the SNAPLE reproduction test suite."""

from __future__ import annotations

import pytest

from repro.graph import generators
from repro.graph.builder import GraphBuilder
from repro.graph.digraph import DiGraph


@pytest.fixture
def triangle_graph() -> DiGraph:
    """Directed triangle 0 -> 1 -> 2 -> 0."""
    return DiGraph(3, [0, 1, 2], [1, 2, 0])


@pytest.fixture
def paper_figure3_graph() -> DiGraph:
    """The example graph of Figure 3 in the paper.

    Vertices (first-seen interning order): a=0, b=1, c=2, d=3, h=4, e=5,
    f=6, g=7.
    Edges: a->{b, c, d, h}; b->{e, f}; c->{f, g}; d->{g}; h->{e, g}.
    The edge weights of the figure are raw similarities, reproduced in tests
    by monkeypatching the similarity lookup; the topology alone is enough for
    path-counting checks.
    """
    builder = GraphBuilder()
    edges = [
        ("a", "b"), ("a", "c"), ("a", "d"), ("a", "h"),
        ("b", "e"), ("b", "f"),
        ("c", "f"), ("c", "g"),
        ("d", "g"),
        ("h", "e"), ("h", "g"),
    ]
    builder.add_edges(edges)
    return builder.build()


@pytest.fixture
def small_social_graph() -> DiGraph:
    """A ~300-vertex clustered power-law graph used across integration tests."""
    return generators.powerlaw_cluster(300, 4, 0.5, seed=7)


@pytest.fixture
def medium_social_graph() -> DiGraph:
    """A ~800-vertex clustered graph for experiments needing more structure."""
    return generators.powerlaw_cluster(800, 4, 0.5, seed=11)


@pytest.fixture
def star_graph() -> DiGraph:
    """A hub (vertex 0) pointing at 10 leaves, each leaf pointing back."""
    sources = []
    targets = []
    for leaf in range(1, 11):
        sources += [0, leaf]
        targets += [leaf, 0]
    return DiGraph(11, sources, targets)
