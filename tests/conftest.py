"""Shared fixtures for the SNAPLE reproduction test suite."""

from __future__ import annotations

import os
from pathlib import Path

import pytest
from hypothesis import HealthCheck
from hypothesis import settings as hypothesis_settings

from repro.graph import generators
from repro.graph.builder import GraphBuilder
from repro.graph.digraph import DiGraph
from repro.runtime.checkpoint import FaultSpec, list_checkpoint_dirs

# Property-test settings are registered centrally: examples that spawn real
# worker processes are slow by nature, so the suite-wide profile disables
# the per-example deadline and the too_slow health check instead of every
# test file repeating them.  Select another profile (e.g. hypothesis's
# built-in "ci") with HYPOTHESIS_PROFILE=<name>.
hypothesis_settings.register_profile(
    "snaple",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
hypothesis_settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "snaple"))


@pytest.fixture
def triangle_graph() -> DiGraph:
    """Directed triangle 0 -> 1 -> 2 -> 0."""
    return DiGraph(3, [0, 1, 2], [1, 2, 0])


@pytest.fixture
def paper_figure3_graph() -> DiGraph:
    """The example graph of Figure 3 in the paper.

    Vertices (first-seen interning order): a=0, b=1, c=2, d=3, h=4, e=5,
    f=6, g=7.
    Edges: a->{b, c, d, h}; b->{e, f}; c->{f, g}; d->{g}; h->{e, g}.
    The edge weights of the figure are raw similarities, reproduced in tests
    by monkeypatching the similarity lookup; the topology alone is enough for
    path-counting checks.
    """
    builder = GraphBuilder()
    edges = [
        ("a", "b"), ("a", "c"), ("a", "d"), ("a", "h"),
        ("b", "e"), ("b", "f"),
        ("c", "f"), ("c", "g"),
        ("d", "g"),
        ("h", "e"), ("h", "g"),
    ]
    builder.add_edges(edges)
    return builder.build()


@pytest.fixture
def small_social_graph() -> DiGraph:
    """A ~300-vertex clustered power-law graph used across integration tests."""
    return generators.powerlaw_cluster(300, 4, 0.5, seed=7)


@pytest.fixture
def medium_social_graph() -> DiGraph:
    """A ~800-vertex clustered graph for experiments needing more structure."""
    return generators.powerlaw_cluster(800, 4, 0.5, seed=11)


@pytest.fixture
def star_graph() -> DiGraph:
    """A hub (vertex 0) pointing at 10 leaves, each leaf pointing back."""
    sources = []
    targets = []
    for leaf in range(1, 11):
        sources += [0, leaf]
        targets += [leaf, 0]
    return DiGraph(11, sources, targets)


@pytest.fixture(scope="session")
def random_graph():
    """Session-cached factory for the seeded random graphs the suites share.

    Replaces the per-suite graph builders that used to live in tests/gas,
    tests/bsp, tests/snaple and tests/runtime: the same ``(model,
    parameters, seed)`` tuple now builds one :class:`DiGraph` per session
    and hands the immutable instance to every caller.

    ``random_graph(n, edges_per_vertex, triangle_probability, seed=...)``
    builds a clustered power-law graph (the default model);
    ``random_graph(n, edge_probability=p, model="erdos_renyi", seed=...)``
    builds a G(n, p) graph.
    """
    cache: dict[tuple, DiGraph] = {}

    def make(num_vertices: int = 150, edges_per_vertex: int = 3,
             triangle_probability: float = 0.3, *, seed: int = 11,
             model: str = "powerlaw_cluster",
             edge_probability: float | None = None) -> DiGraph:
        key = (model, num_vertices, edges_per_vertex, triangle_probability,
               edge_probability, seed)
        if key not in cache:
            if model == "powerlaw_cluster":
                cache[key] = generators.powerlaw_cluster(
                    num_vertices, edges_per_vertex, triangle_probability,
                    seed=seed,
                )
            elif model == "erdos_renyi":
                if edge_probability is None:
                    raise ValueError(
                        "erdos_renyi graphs need edge_probability="
                    )
                cache[key] = generators.erdos_renyi(
                    num_vertices, edge_probability, seed=seed
                )
            else:
                raise ValueError(f"unknown random-graph model {model!r}")
        return cache[key]

    return make


class FaultInjector:
    """Drives deterministic failures against the parallel execution stack.

    Three failure modes, matching what commodity clusters actually do:

    * :meth:`kill_worker` — a one-shot
      :class:`~repro.runtime.checkpoint.FaultSpec` that hard-kills the
      worker running partition N's task at superstep K (pass it as the
      ``fault=`` option of a parallel backend/executor);
    * :meth:`corrupt_shard` — flips a byte in a written checkpoint shard,
      which must surface as a checksum
      :class:`~repro.errors.CheckpointError` on resume;
    * :meth:`truncate_manifest` — cuts a checkpoint manifest short, which
      must surface as a parse :class:`~repro.errors.CheckpointError`.
    """

    def __init__(self, tmp_path: Path) -> None:
        self._tmp_path = tmp_path
        self._tokens = 0

    def kill_worker(self, superstep: int, partition: int) -> FaultSpec:
        """A fault that kills ``partition``'s worker at ``superstep``, once."""
        self._tokens += 1
        token = self._tmp_path / f"fault-token-{self._tokens}"
        return FaultSpec(superstep=superstep, partition=partition,
                         token_path=str(token))

    @staticmethod
    def _step_dir(checkpoint_root: Path, step: int | None) -> Path:
        steps = list_checkpoint_dirs(checkpoint_root)
        assert steps, f"no checkpoints under {checkpoint_root}"
        if step is None:
            return steps[-1]
        by_number = {int(path.name.split("-")[-1]): path for path in steps}
        return by_number[step]

    def corrupt_shard(self, checkpoint_root: Path, *,
                      shard: str = "state.bin",
                      step: int | None = None) -> Path:
        """Flip one byte in the middle of a checkpoint shard."""
        path = self._step_dir(Path(checkpoint_root), step) / shard
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        path.write_bytes(bytes(blob))
        return path

    def truncate_manifest(self, checkpoint_root: Path, *,
                          step: int | None = None,
                          keep_bytes: int = 25) -> Path:
        """Cut a checkpoint manifest down to ``keep_bytes`` bytes."""
        path = self._step_dir(Path(checkpoint_root), step) / "manifest.json"
        path.write_bytes(path.read_bytes()[:keep_bytes])
        return path


@pytest.fixture
def fault_injector(tmp_path: Path) -> FaultInjector:
    """Crash/corruption injection harness for fault-tolerance tests."""
    return FaultInjector(tmp_path)
