"""End-to-end integration tests spanning the extension subsystems.

These tests exercise the full pipeline a downstream user of the extensions
would run — dataset analog, edge-removal protocol, predictor, metrics — and
pin the cross-implementation guarantees the library documents: every
execution path of the same configuration (local, GAS, BSP, K-hop at K = 2,
content-aware at weight 0) returns identical predictions.
"""

from __future__ import annotations

import math

import pytest

from repro.eval.metrics import evaluate_predictions
from repro.eval.protocol import remove_random_edges
from repro.gas.cluster import TYPE_I, cluster_of
from repro.gas.partition import HdrfVertexCut
from repro.graph.attributes import generate_profiles
from repro.graph.datasets import load_dataset
from repro.snaple import (
    ContentAwareLinkPredictor,
    ContentConfig,
    KHopLinkPredictor,
    SnapleBspPredictor,
    SnapleConfig,
    SnapleLinkPredictor,
)


@pytest.fixture(scope="module")
def split():
    graph = load_dataset("pokec", scale=0.2, seed=21)
    return remove_random_edges(graph, seed=21)


@pytest.fixture(scope="module")
def config():
    # No truncation so every execution path is fully deterministic.
    return SnapleConfig(
        k=5, truncation_threshold=math.inf, k_local=10, seed=21
    )


class TestAllExecutionPathsAgree:
    @pytest.fixture(scope="class")
    def local_result(self, split, config):
        return SnapleLinkPredictor(config).predict(split.train_graph)

    def test_gas_with_hdrf_partitioning_matches_local(self, split, config, local_result):
        gas = SnapleLinkPredictor(config).predict(
            split.train_graph,
            backend="gas",
            cluster=cluster_of(TYPE_I, 4),
            partitioner=HdrfVertexCut(),
        )
        assert gas.predictions == local_result.predictions

    def test_bsp_matches_local(self, split, config, local_result):
        bsp = SnapleBspPredictor(config).predict(
            split.train_graph, cluster=cluster_of(TYPE_I, 4)
        )
        assert bsp.predictions == local_result.predictions

    def test_two_hop_khop_matches_local(self, split, config, local_result):
        khop = KHopLinkPredictor(config, num_hops=2).predict(split.train_graph)
        assert khop.predictions == local_result.predictions

    def test_content_with_zero_weight_matches_local(self, split, config, local_result):
        profiles = generate_profiles(split.train_graph, seed=21)
        content = ContentAwareLinkPredictor(
            ContentConfig(snaple=config, content_weight=0.0)
        ).predict(split.train_graph, profiles)
        assert content.predictions == local_result.predictions

    def test_shared_recall_is_non_trivial(self, split, local_result):
        quality = evaluate_predictions(local_result.predictions, split)
        assert quality.recall > 0.05
        assert quality.hits > 0


class TestExtensionInteroperability:
    def test_content_and_khop_compose_with_the_protocol(self, split):
        """A realistic extension workflow: content-aware scoring for the
        2-hop candidates, with recall measured by the standard protocol."""
        profiles = generate_profiles(
            split.train_graph, homophily=0.9, tags_per_vertex=6, seed=22
        )
        snaple = SnapleConfig.paper_default("linearSum", k_local=10, seed=22)
        content = ContentAwareLinkPredictor(
            ContentConfig(snaple=snaple, content_weight=0.25)
        ).predict(split.train_graph, profiles)
        quality = evaluate_predictions(content.predictions, split)
        assert 0.0 < quality.recall <= 1.0
        assert quality.precision <= 1.0

    def test_bsp_accounting_feeds_the_same_metrics_schema(self, split, config):
        """BSP runs report through the same RunMetrics schema as GAS runs, so
        the experiment runner and cost model treat both uniformly."""
        bsp = SnapleBspPredictor(config).predict(
            split.train_graph, cluster=cluster_of(TYPE_I, 4)
        )
        metrics = bsp.bsp_result.metrics
        assert metrics.total_compute_units > 0
        assert metrics.total_network_bytes > 0
        assert metrics.simulated_seconds > 0
        assert len(metrics.steps) == bsp.bsp_result.supersteps
