"""Test package for the SNAPLE reproduction."""
