"""Integration tests for the ``snaple`` command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_experiment_choices_include_all_tables_and_figures(self):
        parser = build_parser()
        args = parser.parse_args(["table5"])
        assert args.experiment == "table5"
        assert args.scale == 1.0
        assert args.seed == 42

    def test_scale_and_seed_flags(self):
        args = build_parser().parse_args(["figure9", "--scale", "0.5", "--seed", "7"])
        assert args.scale == 0.5
        assert args.seed == 7

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table99"])


class TestMain:
    def test_list_prints_experiments_and_datasets(self, capsys):
        exit_code = main(["list"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "table5" in captured.out
        assert "figure11" in captured.out
        assert "twitter-rv" in captured.out

    def test_running_a_small_figure_prints_series(self, capsys):
        exit_code = main(["figure9", "--scale", "0.2", "--seed", "3"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "Figure 9" in captured.out
        assert "recall" in captured.out

    def test_list_mentions_execution_backends(self, capsys):
        main(["list"])
        captured = capsys.readouterr()
        for backend in ("local", "gas", "bsp", "cassovary",
                        "random_walk_ppr", "topological"):
            assert backend in captured.out


class TestEngineAndJsonFlags:
    def test_underscore_experiment_names_are_normalized(self):
        args = build_parser().parse_args(["ablation_engines"])
        assert args.experiment == "ablation-engines"

    def test_engine_flag_restricts_the_ablation(self, capsys):
        exit_code = main(["ablation_engines", "--engine", "gas",
                          "--scale", "0.2"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "GAS (random cut)" in captured.out
        assert "BSP (hash cut)" not in captured.out

    def test_engine_flag_rejected_for_other_experiments(self, capsys):
        with pytest.raises(SystemExit):
            main(["figure9", "--engine", "gas", "--scale", "0.2"])

    def test_json_output_is_machine_readable(self, capsys):
        exit_code = main(["ablation_engines", "--engine", "gas",
                          "--json", "--scale", "0.2"])
        captured = capsys.readouterr()
        assert exit_code == 0
        payload = json.loads(captured.out)
        assert payload["experiment"] == "ablation-engines"
        rows = payload["result"]["rows"]
        assert rows and all(row["engine"] == "GAS (random cut)" for row in rows)

    def test_json_listing(self, capsys):
        exit_code = main(["list", "--json"])
        captured = capsys.readouterr()
        assert exit_code == 0
        payload = json.loads(captured.out)
        assert "ablation-engines" in payload["experiments"]
        assert "gas" in payload["backends"]
        assert payload["backends"]["gas"]["simulated"] is True

    def test_json_output_for_dataclass_results(self, capsys):
        exit_code = main(["figure9", "--json", "--scale", "0.2"])
        captured = capsys.readouterr()
        assert exit_code == 0
        payload = json.loads(captured.out)
        assert payload["experiment"] == "figure9"
        assert "result" in payload


class TestServeParser:
    def test_serve_flags_parse(self):
        args = build_parser().parse_args([
            "serve", "--queue-bound", "8", "--compact-every", "16",
            "--workers", "3", "--vertex", "5", "--ingest", "1:2",
            "--ingest", "3:4", "--demo",
        ])
        assert args.experiment == "serve"
        assert args.queue_bound == 8
        assert args.compact_every == 16
        assert args.workers == 3
        assert args.vertex == 5
        assert args.ingest == [(1, 2), (3, 4)]
        assert args.demo

    def test_load_flags_parse(self):
        args = build_parser().parse_args([
            "serve", "--load-clients", "4", "--load-windows", "2",
            "--load-window-seconds", "0.5",
        ])
        assert args.load_clients == 4
        assert args.load_windows == 2
        assert args.load_window_seconds == 0.5

    @pytest.mark.parametrize("edge", ["bad", "1:", ":2", "1:2:3", "a:b"])
    def test_malformed_ingest_edge_rejected(self, edge):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--ingest", edge])

    def test_list_mentions_serve(self, capsys):
        main(["list"])
        assert "serve" in capsys.readouterr().out


class TestServeMain:
    def test_serve_only_flags_rejected_elsewhere(self):
        for argv in (["figure9", "--queue-bound", "4"],
                     ["figure9", "--compact-every", "4"],
                     ["figure9", "--vertex", "1"],
                     ["figure9", "--ingest", "1:2"],
                     ["figure9", "--load-clients", "2"],
                     ["figure9", "--demo"]):
            with pytest.raises(SystemExit):
                main(argv + ["--scale", "0.2"])

    def test_batch_flags_rejected_for_serve(self):
        for argv in (["serve", "--engine", "gas"],
                     ["serve", "--mode", "reference"],
                     ["serve", "--checkpoint-dir", "/tmp/ckpt"],
                     ["serve", "--resume"]):
            with pytest.raises(SystemExit):
                main(argv)

    @pytest.mark.parametrize("argv", [
        ["serve", "--queue-bound", "0"],
        ["serve", "--workers", "0"],
        ["serve", "--compact-every", "0"],
    ])
    def test_invalid_serving_config_surfaces(self, argv):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            main(argv)

    def test_query_and_ingest_session(self, capsys):
        exit_code = main(["serve", "--scale", "0.08", "--vertex", "3",
                          "--ingest", "3:7", "--workers", "1"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "Online serving" in captured.out
        assert "top-k(3)" in captured.out
        assert "ingest 3->7" in captured.out
        assert "stats:" in captured.out

    def test_demo_json_shows_changed_answer(self, capsys):
        exit_code = main(["serve", "--demo", "--json", "--scale", "0.08"])
        captured = capsys.readouterr()
        assert exit_code == 0
        payload = json.loads(captured.out)
        assert payload["experiment"] == "serve"
        demo = next(event for event in payload["events"]
                    if event["op"] == "demo")
        assert demo["answer_changed"] is True
        assert demo["before"] != demo["after"]
        assert demo["ingested_edge"][1] == demo["before"][0]
        assert payload["stats"]["edges_ingested"] == 1
        assert payload["extra"]["requests_served"] >= 2.0

    def test_load_generator_json(self, capsys):
        exit_code = main(["serve", "--json", "--scale", "0.08",
                          "--load-clients", "2", "--load-windows", "2",
                          "--load-window-seconds", "0.1"])
        captured = capsys.readouterr()
        assert exit_code == 0
        payload = json.loads(captured.out)
        load = payload["load"]
        assert load["offered_clients"] == 2
        assert len(load["windows"]) == 2
        assert load["stable_windows"] == 1
        assert load["total_operations"] > 0


class TestSuiteCommand:
    def _write_suite(self, tmp_path):
        path = tmp_path / "mini.toml"
        path.write_text(
            "[suite]\n"
            'name = "mini"\n'
            "\n"
            "[defaults]\n"
            "scale = 0.05\n"
            "\n"
            "[[packs]]\n"
            'name = "pack"\n'
            "\n"
            "[[packs.experiments]]\n"
            'name = "exp"\n'
            'dataset = "gowalla"\n',
            encoding="utf-8",
        )
        return path

    def test_suite_list(self, tmp_path, capsys):
        path = self._write_suite(tmp_path)
        assert main(["suite", "list", str(path)]) == 0
        captured = capsys.readouterr()
        assert "mini" in captured.out
        assert "exp" in captured.out

    def test_suite_describe_json(self, tmp_path, capsys):
        path = self._write_suite(tmp_path)
        assert main(["suite", "describe", str(path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["suite"] == "mini"
        (experiment,) = payload["experiments"]
        assert experiment["qualified_name"] == "pack/exp"
        assert experiment["workload"] == "batch"

    def test_suite_run_json_and_out_dir(self, tmp_path, capsys):
        path = self._write_suite(tmp_path)
        out_dir = tmp_path / "reports"
        assert main(["suite", "run", str(path), "--json",
                     "--out", str(out_dir)]) == 0
        payload = json.loads(capsys.readouterr().out)
        (result,) = payload["results"]
        assert result["report"]["backend"] == "local"
        assert (out_dir / "pack__exp.json").is_file()

    def test_suite_run_rejects_bad_file(self, tmp_path, capsys):
        path = tmp_path / "broken.toml"
        path.write_text("[packs\n", encoding="utf-8")
        with pytest.raises(SystemExit):
            main(["suite", "run", str(path)])
        assert "invalid TOML" in capsys.readouterr().err

    def test_suite_run_rejects_unknown_pack(self, tmp_path, capsys):
        path = self._write_suite(tmp_path)
        with pytest.raises(SystemExit):
            main(["suite", "run", str(path), "--pack", "nope"])
        assert "no pack" in capsys.readouterr().err

    def test_list_mentions_suite(self, capsys):
        main(["list"])
        assert "suite" in capsys.readouterr().out
