"""Integration tests for the ``snaple`` command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_experiment_choices_include_all_tables_and_figures(self):
        parser = build_parser()
        args = parser.parse_args(["table5"])
        assert args.experiment == "table5"
        assert args.scale == 1.0
        assert args.seed == 42

    def test_scale_and_seed_flags(self):
        args = build_parser().parse_args(["figure9", "--scale", "0.5", "--seed", "7"])
        assert args.scale == 0.5
        assert args.seed == 7

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table99"])


class TestMain:
    def test_list_prints_experiments_and_datasets(self, capsys):
        exit_code = main(["list"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "table5" in captured.out
        assert "figure11" in captured.out
        assert "twitter-rv" in captured.out

    def test_running_a_small_figure_prints_series(self, capsys):
        exit_code = main(["figure9", "--scale", "0.2", "--seed", "3"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "Figure 9" in captured.out
        assert "recall" in captured.out
