"""Integration tests for the ``snaple`` command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_experiment_choices_include_all_tables_and_figures(self):
        parser = build_parser()
        args = parser.parse_args(["table5"])
        assert args.experiment == "table5"
        assert args.scale == 1.0
        assert args.seed == 42

    def test_scale_and_seed_flags(self):
        args = build_parser().parse_args(["figure9", "--scale", "0.5", "--seed", "7"])
        assert args.scale == 0.5
        assert args.seed == 7

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table99"])


class TestMain:
    def test_list_prints_experiments_and_datasets(self, capsys):
        exit_code = main(["list"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "table5" in captured.out
        assert "figure11" in captured.out
        assert "twitter-rv" in captured.out

    def test_running_a_small_figure_prints_series(self, capsys):
        exit_code = main(["figure9", "--scale", "0.2", "--seed", "3"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "Figure 9" in captured.out
        assert "recall" in captured.out

    def test_list_mentions_execution_backends(self, capsys):
        main(["list"])
        captured = capsys.readouterr()
        for backend in ("local", "gas", "bsp", "cassovary",
                        "random_walk_ppr", "topological"):
            assert backend in captured.out


class TestEngineAndJsonFlags:
    def test_underscore_experiment_names_are_normalized(self):
        args = build_parser().parse_args(["ablation_engines"])
        assert args.experiment == "ablation-engines"

    def test_engine_flag_restricts_the_ablation(self, capsys):
        exit_code = main(["ablation_engines", "--engine", "gas",
                          "--scale", "0.2"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "GAS (random cut)" in captured.out
        assert "BSP (hash cut)" not in captured.out

    def test_engine_flag_rejected_for_other_experiments(self, capsys):
        with pytest.raises(SystemExit):
            main(["figure9", "--engine", "gas", "--scale", "0.2"])

    def test_json_output_is_machine_readable(self, capsys):
        exit_code = main(["ablation_engines", "--engine", "gas",
                          "--json", "--scale", "0.2"])
        captured = capsys.readouterr()
        assert exit_code == 0
        payload = json.loads(captured.out)
        assert payload["experiment"] == "ablation-engines"
        rows = payload["result"]["rows"]
        assert rows and all(row["engine"] == "GAS (random cut)" for row in rows)

    def test_json_listing(self, capsys):
        exit_code = main(["list", "--json"])
        captured = capsys.readouterr()
        assert exit_code == 0
        payload = json.loads(captured.out)
        assert "ablation-engines" in payload["experiments"]
        assert "gas" in payload["backends"]
        assert payload["backends"]["gas"]["simulated"] is True

    def test_json_output_for_dataclass_results(self, capsys):
        exit_code = main(["figure9", "--json", "--scale", "0.2"])
        captured = capsys.readouterr()
        assert exit_code == 0
        payload = json.loads(captured.out)
        assert payload["experiment"] == "figure9"
        assert "result" in payload
