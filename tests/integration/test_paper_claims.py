"""Integration tests checking the *shape* of the paper's headline claims.

These tests run the actual experiment pipeline on reduced-scale synthetic
dataset analogs and assert the qualitative relationships the paper reports
(who wins, in which direction a knob moves recall or time), not the absolute
numbers.  The claim numbering follows DESIGN.md §5.
"""

from __future__ import annotations

import math

import pytest

from repro.baselines.random_walk_ppr import RandomWalkConfig
from repro.eval.runner import ExperimentRunner
from repro.gas.cluster import TYPE_I, TYPE_II, cluster_of
from repro.graph.stats import coverage_threshold
from repro.snaple.config import SnapleConfig

SCALE = 0.4
SEED = 21


@pytest.fixture(scope="module")
def runner() -> ExperimentRunner:
    return ExperimentRunner(scale=SCALE, seed=SEED)


@pytest.fixture(scope="module")
def cluster():
    return cluster_of(TYPE_II, 4)


@pytest.fixture(scope="module")
def baseline_run(runner, cluster):
    return runner.run_baseline_gas("gowalla", cluster, enforce_memory=False)


@pytest.fixture(scope="module")
def snaple_full_run(runner, cluster):
    config = SnapleConfig.paper_default(
        "linearSum", k_local=math.inf, truncation_threshold=math.inf, seed=SEED
    )
    return runner.run_snaple_gas("gowalla", config, cluster, enforce_memory=False)


@pytest.fixture(scope="module")
def snaple_sampled_run(runner, cluster):
    config = SnapleConfig.paper_default("linearSum", k_local=20, seed=SEED)
    return runner.run_snaple_gas("gowalla", config, cluster, enforce_memory=False)


class TestClaim1SnapleBeatsBaseline:
    def test_recall_improves(self, baseline_run, snaple_full_run):
        # Table 5: SNAPLE's recall clearly exceeds BASELINE's.
        assert snaple_full_run.recall > 1.2 * baseline_run.recall

    def test_time_improves(self, baseline_run, snaple_full_run):
        # Table 5: SNAPLE is faster even without truncation or sampling.
        assert snaple_full_run.time_seconds < baseline_run.time_seconds

    def test_baseline_ships_far_more_data(self, baseline_run, snaple_full_run):
        assert (
            baseline_run.extra["network_bytes"]
            > 3 * snaple_full_run.extra["network_bytes"]
        )


class TestClaim2SamplingIsTheBigLever:
    def test_klocal_gives_large_speedup_with_small_recall_loss(
        self, snaple_full_run, snaple_sampled_run
    ):
        speedup = snaple_full_run.time_seconds / snaple_sampled_run.time_seconds
        assert speedup > 1.2
        assert snaple_sampled_run.recall > 0.8 * snaple_full_run.recall

    def test_truncation_secondary_to_sampling(self, runner, cluster, snaple_full_run):
        truncated = runner.run_snaple_gas(
            "gowalla",
            SnapleConfig.paper_default(
                "linearSum", k_local=math.inf, truncation_threshold=20, seed=SEED
            ),
            cluster,
            enforce_memory=False,
        )
        sampled = runner.run_snaple_gas(
            "gowalla",
            SnapleConfig.paper_default(
                "linearSum", k_local=20, truncation_threshold=math.inf, seed=SEED
            ),
            cluster,
            enforce_memory=False,
        )
        truncation_speedup = snaple_full_run.time_seconds / truncated.time_seconds
        sampling_speedup = snaple_full_run.time_seconds / sampled.time_seconds
        assert sampling_speedup >= truncation_speedup


class TestClaim3Scalability:
    def test_time_grows_with_graph_size(self, runner):
        config = SnapleConfig.paper_default("linearSum", k_local=20, seed=SEED)
        cluster = cluster_of(TYPE_I, 8)
        small = runner.run_snaple_gas("gowalla", config, cluster, enforce_memory=False)
        large = runner.run_snaple_gas("livejournal", config, cluster,
                                      enforce_memory=False)
        assert large.time_seconds > small.time_seconds

    def test_more_cores_reduce_time(self, runner):
        config = SnapleConfig.paper_default("linearSum", k_local=20, seed=SEED)
        few = runner.run_snaple_gas("livejournal", config, cluster_of(TYPE_I, 8),
                                    enforce_memory=False)
        many = runner.run_snaple_gas("livejournal", config, cluster_of(TYPE_I, 32),
                                     enforce_memory=False)
        assert many.time_seconds < few.time_seconds

    def test_larger_klocal_costs_more_time(self, runner):
        cluster = cluster_of(TYPE_I, 8)
        forty = runner.run_snaple_gas(
            "livejournal",
            SnapleConfig.paper_default("linearSum", k_local=40, seed=SEED),
            cluster, enforce_memory=False,
        )
        eighty = runner.run_snaple_gas(
            "livejournal",
            SnapleConfig.paper_default("linearSum", k_local=80, seed=SEED),
            cluster, enforce_memory=False,
        )
        assert eighty.time_seconds >= forty.time_seconds


class TestClaim4TruncationThreshold:
    def test_recall_saturates_once_threshold_covers_most_vertices(self, runner):
        graph = runner.dataset("livejournal")
        saturation_point = coverage_threshold(graph, 0.8)
        low = runner.run_snaple_local(
            "livejournal",
            SnapleConfig.paper_default("linearSum", k_local=40,
                                       truncation_threshold=2, seed=SEED),
        )
        saturated = runner.run_snaple_local(
            "livejournal",
            SnapleConfig.paper_default("linearSum", k_local=40,
                                       truncation_threshold=saturation_point,
                                       seed=SEED),
        )
        beyond = runner.run_snaple_local(
            "livejournal",
            SnapleConfig.paper_default("linearSum", k_local=40,
                                       truncation_threshold=saturation_point * 4,
                                       seed=SEED),
        )
        assert saturated.recall >= low.recall
        assert abs(beyond.recall - saturated.recall) <= 0.05


class TestClaim5SamplingPolicy:
    def test_gamma_max_beats_alternatives_at_small_klocal(self, runner):
        recalls = {}
        for policy in ("max", "min", "rnd"):
            config = SnapleConfig.paper_default(
                "linearSum", k_local=5, sampler_name=policy, seed=SEED
            )
            recalls[policy] = runner.run_snaple_local("livejournal", config).recall
        assert recalls["max"] >= recalls["rnd"]
        assert recalls["max"] > recalls["min"]


class TestClaim6AggregatorBehaviour:
    def test_sum_aggregator_improves_with_klocal(self, runner):
        small = runner.run_snaple_local(
            "livejournal",
            SnapleConfig.paper_default("linearSum", k_local=5, seed=SEED),
        )
        large = runner.run_snaple_local(
            "livejournal",
            SnapleConfig.paper_default("linearSum", k_local=80, seed=SEED),
        )
        assert large.recall >= small.recall

    def test_sum_family_beats_geom_family(self, runner):
        linear_sum = runner.run_snaple_local(
            "livejournal",
            SnapleConfig.paper_default("linearSum", k_local=40, seed=SEED),
        )
        linear_geom = runner.run_snaple_local(
            "livejournal",
            SnapleConfig.paper_default("linearGeom", k_local=40, seed=SEED),
        )
        # Figure 8: the Sum aggregator family reaches higher recall than the
        # Geom family at comparable settings.
        assert linear_sum.recall >= linear_geom.recall


class TestClaim7ProtocolSensitivity:
    def test_recall_increases_with_k(self, runner):
        k5 = runner.run_snaple_local(
            "pokec", SnapleConfig.paper_default("linearSum", k=5, k_local=40, seed=SEED)
        )
        k20 = runner.run_snaple_local(
            "pokec", SnapleConfig.paper_default("linearSum", k=20, k_local=40, seed=SEED)
        )
        assert k20.recall > k5.recall

    def test_recall_decreases_with_removed_edges(self, runner):
        config = SnapleConfig.paper_default("linearSum", k_local=40, seed=SEED)
        one = runner.run_snaple_local("pokec", config, removed_edges_per_vertex=1)
        five = runner.run_snaple_local("pokec", config, removed_edges_per_vertex=5)
        assert five.recall < one.recall


class TestClaim8SingleMachineComparison:
    def test_snaple_beats_random_walk_ppr_on_one_machine(self, runner):
        ppr = runner.run_random_walk(
            "livejournal", RandomWalkConfig(num_walks=100, depth=3, seed=SEED)
        )
        snaple = runner.run_snaple_gas(
            "livejournal",
            SnapleConfig.paper_default("linearSum", k_local=20, seed=SEED),
            cluster_of(TYPE_II, 1),
            enforce_memory=False,
        )
        # Table 6: equal or better recall in less (simulated) time.
        assert snaple.recall >= 0.8 * ppr.recall
        assert snaple.time_seconds < ppr.time_seconds

    def test_walk_depth_beyond_three_barely_helps(self, runner):
        shallow = runner.run_random_walk(
            "livejournal", RandomWalkConfig(num_walks=100, depth=3, seed=SEED)
        )
        deep = runner.run_random_walk(
            "livejournal", RandomWalkConfig(num_walks=100, depth=10, seed=SEED)
        )
        assert deep.recall <= shallow.recall + 0.05
        assert deep.time_seconds > shallow.time_seconds
