"""End-to-end integration tests exercising the full public API surface."""

from __future__ import annotations

import math

import pytest

import repro
from repro.baselines import GasBaselinePredictor, RandomWalkConfig, RandomWalkPPRPredictor
from repro.eval.metrics import evaluate_predictions
from repro.eval.protocol import remove_random_edges
from repro.gas.cluster import TYPE_I, cluster_of
from repro.graph.io import read_edge_list, write_edge_list
from repro.snaple import SnapleConfig, SnapleLinkPredictor


class TestPublicApi:
    def test_version_exposed(self):
        assert repro.__version__

    def test_top_level_reexports(self):
        assert repro.SnapleLinkPredictor is SnapleLinkPredictor
        assert "linearSum" in repro.paper_score_names()
        assert set(repro.dataset_names()) >= {"gowalla", "twitter-rv"}

    def test_score_config_lookup(self):
        config = repro.score_config("geomMean")
        assert config.aggregator.name == "Mean"


class TestFullPipeline:
    def test_file_to_predictions_round_trip(self, tmp_path, medium_social_graph):
        # Persist a graph, reload it, split it, predict, evaluate — the whole
        # workflow a downstream user would run on their own edge list.
        path = tmp_path / "graph.tsv"
        write_edge_list(path, medium_social_graph.edges())
        graph = read_edge_list(path)
        split = remove_random_edges(graph, seed=3)
        config = SnapleConfig.paper_default("linearSum", k_local=20, seed=3)
        result = SnapleLinkPredictor(config).predict(split.train_graph)
        report = evaluate_predictions(result.predictions, split)
        assert report.recall > 0.05
        assert report.hits <= report.num_removed

    def test_snaple_pipeline_on_dataset_analog(self):
        graph = repro.load_dataset("gowalla", scale=0.3, seed=5)
        split = remove_random_edges(graph, seed=5)
        config = SnapleConfig.paper_default("counter", k_local=20, seed=5)
        result = SnapleLinkPredictor(config).predict(
            split.train_graph, backend="gas", cluster=cluster_of(TYPE_I, 4)
        )
        report = evaluate_predictions(result.predictions, split)
        assert report.recall > 0.05
        assert result.simulated_seconds > 0

    def test_three_predictors_on_same_split(self, medium_social_graph):
        split = remove_random_edges(medium_social_graph, seed=9)
        snaple = SnapleLinkPredictor(
            SnapleConfig.paper_default("linearSum", k_local=20, seed=9)
        ).predict(split.train_graph)
        baseline = GasBaselinePredictor().predict_gas(
            split.train_graph, enforce_memory=False
        )
        walker = RandomWalkPPRPredictor(
            RandomWalkConfig(num_walks=50, depth=3, seed=9)
        ).predict(split.train_graph)
        recalls = {
            "snaple": evaluate_predictions(snaple.predictions, split).recall,
            "baseline": evaluate_predictions(baseline.predictions, split).recall,
            "ppr": evaluate_predictions(walker.predictions, split).recall,
        }
        assert all(0.0 <= value <= 1.0 for value in recalls.values())
        assert recalls["snaple"] >= max(recalls["baseline"], recalls["ppr"]) * 0.8

    def test_error_types_are_exported(self, medium_social_graph):
        from repro import ResourceExhaustedError
        from repro.gas.cluster import TYPE_II, ClusterConfig

        tiny = ClusterConfig(machine=TYPE_II, num_machines=2, memory_scale=1e-9)
        with pytest.raises(ResourceExhaustedError):
            GasBaselinePredictor().predict_gas(medium_social_graph, cluster=tiny)

    def test_local_and_gas_modes_agree_end_to_end(self):
        graph = repro.load_dataset("gowalla", scale=0.25, seed=11)
        config = SnapleConfig(k_local=15, truncation_threshold=math.inf, seed=11)
        predictor = SnapleLinkPredictor(config)
        local = predictor.predict(graph)
        gas = predictor.predict(graph, backend="gas", cluster=cluster_of(TYPE_I, 4))
        assert local.predictions == gas.predictions
