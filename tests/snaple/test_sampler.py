"""Unit tests for the klocal neighbor-sampling policies."""

from __future__ import annotations

import math
import random

import pytest

from repro.errors import ConfigurationError
from repro.snaple.sampler import (
    SAMPLERS,
    BottomSimilaritySampler,
    RandomSampler,
    TopSimilaritySampler,
    get_sampler,
)

SIMILARITIES = {10: 0.9, 11: 0.5, 12: 0.7, 13: 0.1, 14: 0.3}


class TestTopSampler:
    def test_keeps_highest_similarities(self):
        kept = TopSimilaritySampler().select(SIMILARITIES, 2, rng=random.Random(0))
        assert set(kept) == {10, 12}

    def test_values_preserved(self):
        kept = TopSimilaritySampler().select(SIMILARITIES, 3, rng=random.Random(0))
        for vertex, value in kept.items():
            assert value == SIMILARITIES[vertex]

    def test_large_budget_keeps_everything(self):
        kept = TopSimilaritySampler().select(SIMILARITIES, 100, rng=random.Random(0))
        assert kept == SIMILARITIES

    def test_infinite_budget_keeps_everything(self):
        kept = TopSimilaritySampler().select(SIMILARITIES, math.inf, rng=random.Random(0))
        assert kept == SIMILARITIES

    def test_zero_budget_keeps_nothing(self):
        assert TopSimilaritySampler().select(SIMILARITIES, 0, rng=random.Random(0)) == {}

    def test_deterministic_tie_break(self):
        ties = {1: 0.5, 2: 0.5, 3: 0.5}
        first = TopSimilaritySampler().select(ties, 2, rng=random.Random(0))
        second = TopSimilaritySampler().select(ties, 2, rng=random.Random(99))
        assert first == second


class TestBottomSampler:
    def test_keeps_lowest_similarities(self):
        kept = BottomSimilaritySampler().select(SIMILARITIES, 2, rng=random.Random(0))
        assert set(kept) == {13, 14}

    def test_disjoint_from_top_when_budget_small(self):
        top = TopSimilaritySampler().select(SIMILARITIES, 2, rng=random.Random(0))
        bottom = BottomSimilaritySampler().select(SIMILARITIES, 2, rng=random.Random(0))
        assert not set(top) & set(bottom)


class TestRandomSampler:
    def test_subset_of_input(self):
        kept = RandomSampler().select(SIMILARITIES, 3, rng=random.Random(1))
        assert set(kept) <= set(SIMILARITIES)
        assert len(kept) == 3

    def test_seed_controls_choice(self):
        first = RandomSampler().select(SIMILARITIES, 2, rng=random.Random(1))
        second = RandomSampler().select(SIMILARITIES, 2, rng=random.Random(1))
        assert first == second

    def test_small_input_kept_whole(self):
        kept = RandomSampler().select({5: 0.5}, 10, rng=random.Random(0))
        assert kept == {5: 0.5}


class TestValidationAndRegistry:
    @pytest.mark.parametrize("name", ["max", "min", "rnd"])
    def test_negative_budget_rejected(self, name):
        with pytest.raises(ConfigurationError):
            get_sampler(name).select(SIMILARITIES, -1, rng=random.Random(0))

    def test_registry_names(self):
        assert set(SAMPLERS) == {"max", "min", "rnd"}

    def test_unknown_sampler_raises(self):
        with pytest.raises(ConfigurationError):
            get_sampler("top")

    @pytest.mark.parametrize("name", ["max", "min", "rnd"])
    def test_empty_input(self, name):
        assert get_sampler(name).select({}, 5, rng=random.Random(0)) == {}
