"""Tests for SNAPLE expressed as a BSP/Pregel program."""

from __future__ import annotations

import math

import pytest

from repro.bsp.partition import BlockVertexPartitioner
from repro.eval.metrics import evaluate_predictions
from repro.eval.protocol import remove_random_edges
from repro.gas.cluster import TYPE_II, cluster_of
from repro.gas.partition import GreedyVertexCut
from repro.snaple.bsp_program import SnapleBspPredictor, SnapleBspProgram
from repro.snaple.config import SnapleConfig
from repro.snaple.predictor import SnapleLinkPredictor


def _untruncated_config(**overrides) -> SnapleConfig:
    """A deterministic configuration (no truncation randomness)."""
    defaults = dict(
        k=5,
        truncation_threshold=math.inf,
        k_local=math.inf,
        seed=3,
    )
    defaults.update(overrides)
    return SnapleConfig(**defaults)


class TestSnapleBspEquivalence:
    def test_matches_local_predictions_without_truncation(self, small_social_graph):
        config = _untruncated_config()
        local = SnapleLinkPredictor(config).predict(small_social_graph)
        bsp = SnapleBspPredictor(config).predict(small_social_graph)
        assert bsp.predictions == local.predictions

    def test_matches_local_scores_without_truncation(self, small_social_graph):
        config = _untruncated_config()
        local = SnapleLinkPredictor(config).predict(small_social_graph)
        bsp = SnapleBspPredictor(config).predict(small_social_graph)
        for u in small_social_graph.vertices():
            assert set(bsp.scores[u]) == set(local.scores[u])
            for z, value in bsp.scores[u].items():
                assert value == pytest.approx(local.scores[u][z])

    def test_matches_gas_predictions_without_truncation(self, small_social_graph):
        config = _untruncated_config()
        gas = SnapleLinkPredictor(config).predict(
            small_social_graph, backend="gas", cluster=cluster_of(TYPE_II, 4)
        )
        bsp = SnapleBspPredictor(config).predict(
            small_social_graph, cluster=cluster_of(TYPE_II, 4)
        )
        assert bsp.predictions == gas.predictions

    @pytest.mark.parametrize("score_name", ["linearSum", "counter", "PPR", "geomMean"])
    def test_equivalence_holds_across_score_configurations(
        self, small_social_graph, score_name
    ):
        config = _untruncated_config().with_score(score_name)
        local = SnapleLinkPredictor(config).predict(small_social_graph)
        bsp = SnapleBspPredictor(config).predict(small_social_graph)
        assert bsp.predictions == local.predictions

    def test_klocal_sampling_is_respected(self, small_social_graph):
        config = _untruncated_config(k_local=3)
        bsp = SnapleBspPredictor(config).predict(small_social_graph)
        for u in small_social_graph.vertices():
            state = bsp.bsp_result.state_of(u)
            assert len(state.get("sims", {})) <= 3

    def test_distribution_does_not_change_predictions(self, small_social_graph):
        config = _untruncated_config()
        single = SnapleBspPredictor(config).predict(
            small_social_graph, cluster=cluster_of(TYPE_II, 1)
        )
        distributed = SnapleBspPredictor(config).predict(
            small_social_graph,
            cluster=cluster_of(TYPE_II, 8),
            partitioner=BlockVertexPartitioner(),
        )
        assert single.predictions == distributed.predictions


class TestSnapleBspBehaviour:
    def test_predictions_exclude_existing_neighbors(self, small_social_graph):
        config = _untruncated_config()
        result = SnapleBspPredictor(config).predict(small_social_graph)
        for u, targets in result.predictions.items():
            existing = small_social_graph.neighbor_set(u)
            assert not (set(targets) & existing)
            assert u not in targets

    def test_recall_is_non_trivial_on_clustered_graph(self, medium_social_graph):
        split = remove_random_edges(medium_social_graph, seed=1)
        config = SnapleConfig.paper_default("linearSum", k_local=20, seed=1)
        result = SnapleBspPredictor(config).predict(split.train_graph)
        quality = evaluate_predictions(result.predictions, split)
        assert quality.recall > 0.1

    def test_runs_exactly_four_supersteps(self, small_social_graph):
        result = SnapleBspPredictor(_untruncated_config()).predict(small_social_graph)
        assert result.bsp_result.supersteps == 4
        assert len(result.bsp_result.metrics.steps) == 4

    def test_truncation_bounds_neighborhood_state(self, medium_social_graph):
        config = SnapleConfig(
            truncation_threshold=5, exact_truncation=True, k_local=math.inf, seed=2
        )
        result = SnapleBspPredictor(config).predict(medium_social_graph)
        for u in medium_social_graph.vertices():
            assert len(result.bsp_result.state_of(u).get("gamma", [])) <= 5

    def test_predicted_edges_helper(self, small_social_graph):
        result = SnapleBspPredictor(_untruncated_config()).predict(small_social_graph)
        edges = result.predicted_edges()
        assert all(isinstance(edge, tuple) and len(edge) == 2 for edge in edges)
        assert len(edges) == sum(len(t) for t in result.predictions.values())


class TestBspVersusGasDataFlow:
    def test_greedy_vertex_cut_gas_beats_bsp_traffic(self, medium_social_graph):
        """The data-flow comparison behind the engine ablation.

        A message-passing (Pregel) port must ship every truncated
        neighborhood along every cut edge; the vertex-cut GAS engine shares
        vertex data through mirrors, so once the partitioner keeps the
        replication factor low (greedy vertex-cut) its traffic drops below
        the BSP port's.  With PowerGraph's random placement the two are of
        comparable magnitude — the ablation benchmark reports both.
        """
        config = SnapleConfig.paper_default("linearSum", k_local=20, seed=5)
        cluster = cluster_of(TYPE_II, 8)
        gas_greedy = SnapleLinkPredictor(config).predict(
            medium_social_graph, backend="gas", cluster=cluster,
            partitioner=GreedyVertexCut()
        )
        gas_random = SnapleLinkPredictor(config).predict(
            medium_social_graph, backend="gas", cluster=cluster
        )
        bsp = SnapleBspPredictor(config).predict(medium_social_graph, cluster=cluster)
        greedy_bytes = gas_greedy.native.metrics.total_network_bytes
        random_bytes = gas_random.native.metrics.total_network_bytes
        bsp_bytes = bsp.bsp_result.metrics.total_network_bytes
        assert greedy_bytes < bsp_bytes
        # Random vertex-cut and the BSP port carry the same order of traffic.
        assert random_bytes / 5 < bsp_bytes < random_bytes * 5

    def test_single_machine_bsp_has_no_network_cost(self, small_social_graph):
        config = _untruncated_config()
        result = SnapleBspPredictor(config).predict(small_social_graph)
        assert result.bsp_result.metrics.total_network_bytes == 0
