"""Unit tests for the high-level SNAPLE predictor."""

from __future__ import annotations

import math

import pytest

from repro.errors import ConfigurationError
from repro.gas.cluster import TYPE_I, TYPE_II, cluster_of
from repro.snaple.config import SnapleConfig
from repro.snaple.predictor import SnapleLinkPredictor
from repro.snaple.scoring import paper_score_names


class TestLocalPrediction:
    def test_returns_predictions_for_every_vertex(self, small_social_graph):
        result = SnapleLinkPredictor().predict(small_social_graph)
        assert set(result.predictions) == set(range(small_social_graph.num_vertices))

    def test_predictions_bounded_by_k(self, small_social_graph):
        config = SnapleConfig(k=4)
        result = SnapleLinkPredictor(config).predict(small_social_graph)
        assert all(len(targets) <= 4 for targets in result.predictions.values())

    def test_predictions_exclude_existing_edges(self, small_social_graph):
        result = SnapleLinkPredictor().predict(small_social_graph)
        for u, targets in result.predictions.items():
            direct = set(small_social_graph.out_neighbors(u).tolist())
            assert not set(targets) & direct
            assert u not in targets

    def test_deterministic_given_seed(self, small_social_graph):
        config = SnapleConfig(k_local=5, seed=3)
        first = SnapleLinkPredictor(config).predict(small_social_graph)
        second = SnapleLinkPredictor(config).predict(small_social_graph)
        assert first.predictions == second.predictions

    def test_vertex_restriction(self, small_social_graph):
        result = SnapleLinkPredictor().predict(
            small_social_graph, vertices=[0, 5, 9]
        )
        assert set(result.predictions) == {0, 5, 9}

    def test_scores_are_ranked(self, small_social_graph):
        result = SnapleLinkPredictor().predict(small_social_graph)
        for u, targets in result.predictions.items():
            scores = [result.scores[u][z] for z in targets]
            assert scores == sorted(scores, reverse=True)

    @pytest.mark.parametrize("score_name", paper_score_names())
    def test_all_table3_scores_run(self, small_social_graph, score_name):
        config = SnapleConfig.paper_default(score_name, k_local=10)
        result = SnapleLinkPredictor(config).predict(small_social_graph)
        assert result.predictions

    def test_predicted_edges_helper(self, small_social_graph):
        result = SnapleLinkPredictor().predict(small_social_graph)
        edges = result.predicted_edges()
        assert all(isinstance(edge, tuple) and len(edge) == 2 for edge in edges)

    def test_top_prediction_helper(self, small_social_graph):
        result = SnapleLinkPredictor().predict(small_social_graph)
        for vertex, targets in result.predictions.items():
            expected = targets[0] if targets else None
            assert result.top_prediction(vertex) == expected


class TestGasPrediction:
    def test_gas_and_local_agree(self, small_social_graph):
        # The GAS execution and the local execution implement the same
        # algorithm; with the same seed they must return identical
        # predictions whenever no probabilistic truncation is involved.
        config = SnapleConfig(k_local=10, truncation_threshold=math.inf, seed=5)
        predictor = SnapleLinkPredictor(config)
        local = predictor.predict(small_social_graph)
        gas = predictor.predict(small_social_graph, backend="gas")
        assert local.predictions == gas.predictions

    def test_gas_agreement_across_cluster_sizes(self, small_social_graph):
        config = SnapleConfig(k_local=10, truncation_threshold=math.inf, seed=5)
        predictor = SnapleLinkPredictor(config)
        single = predictor.predict(small_social_graph, backend="gas",
                                   cluster=cluster_of(TYPE_II, 1))
        distributed = predictor.predict(small_social_graph, backend="gas",
                                        cluster=cluster_of(TYPE_I, 8))
        assert single.predictions == distributed.predictions

    def test_gas_result_has_accounting(self, small_social_graph):
        result = SnapleLinkPredictor().predict(
            small_social_graph, backend="gas", cluster=cluster_of(TYPE_I, 4)
        )
        assert result.simulated_seconds is not None
        assert result.simulated_seconds > 0
        assert result.native is not None
        assert result.native.metrics.total_network_bytes > 0

    def test_predict_dispatch(self, small_social_graph):
        predictor = SnapleLinkPredictor(SnapleConfig(k_local=5))
        local = predictor.predict(small_social_graph, backend="local")
        gas = predictor.predict(small_social_graph, backend="gas")
        assert local.predictions and gas.predictions
        with pytest.raises(ConfigurationError):
            predictor.predict(small_social_graph, backend="spark")

    def test_sampling_reduces_candidate_scores(self, medium_social_graph):
        full = SnapleLinkPredictor(
            SnapleConfig(k_local=math.inf)
        ).predict(medium_social_graph)
        sampled = SnapleLinkPredictor(
            SnapleConfig(k_local=3)
        ).predict(medium_social_graph)
        full_candidates = sum(len(s) for s in full.scores.values())
        sampled_candidates = sum(len(s) for s in sampled.scores.values())
        assert sampled_candidates < full_candidates
