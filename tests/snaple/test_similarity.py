"""Unit tests for the raw similarity metrics."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.snaple.similarity import (
    SIMILARITIES,
    adamic_adar_weight,
    common_neighbors,
    constant_one,
    cosine,
    dice,
    get_similarity,
    inverse_degree,
    jaccard,
    overlap_coefficient,
)


class TestJaccard:
    def test_identical_sets(self):
        assert jaccard([1, 2, 3], [1, 2, 3]) == pytest.approx(1.0)

    def test_disjoint_sets(self):
        assert jaccard([1, 2], [3, 4]) == 0.0

    def test_partial_overlap(self):
        assert jaccard([1, 2, 3], [2, 3, 4]) == pytest.approx(2 / 4)

    def test_both_empty(self):
        assert jaccard([], []) == 0.0

    def test_one_empty(self):
        assert jaccard([1, 2], []) == 0.0

    def test_duplicates_treated_as_sets(self):
        assert jaccard([1, 1, 2], [2, 2, 1]) == pytest.approx(1.0)

    def test_symmetry(self):
        assert jaccard([1, 2, 3], [3, 4]) == jaccard([3, 4], [1, 2, 3])


class TestOtherSimilarities:
    def test_common_neighbors(self):
        assert common_neighbors([1, 2, 3], [2, 3, 4]) == 2.0

    def test_cosine(self):
        assert cosine([1, 2], [2, 3]) == pytest.approx(1 / 2)
        assert cosine([], [1]) == 0.0

    def test_dice(self):
        assert dice([1, 2, 3], [2, 3, 4]) == pytest.approx(4 / 6)
        assert dice([], []) == 0.0

    def test_overlap_coefficient(self):
        assert overlap_coefficient([1, 2], [1, 2, 3, 4]) == pytest.approx(1.0)
        assert overlap_coefficient([], [1]) == 0.0

    def test_adamic_adar_weight(self):
        assert adamic_adar_weight([1, 2], [3, 4]) == 0.0
        assert adamic_adar_weight([1, 2, 3], [2, 3, 4]) > 0.0

    def test_constant_one(self):
        assert constant_one([], []) == 1.0
        assert constant_one([1, 2], [9]) == 1.0

    def test_inverse_degree(self):
        assert inverse_degree([1, 2], [1, 2, 3, 4]) == pytest.approx(0.25)
        assert inverse_degree([1], []) == 0.0


class TestBoundsAndRegistry:
    @pytest.mark.parametrize("name", ["jaccard", "cosine", "dice", "overlap"])
    def test_normalized_metrics_bounded_by_one(self, name):
        sim = get_similarity(name)
        assert 0.0 <= sim([1, 2, 3, 4], [3, 4, 5]) <= 1.0

    def test_registry_contains_paper_metrics(self):
        assert {"jaccard", "one", "inverse_degree"} <= set(SIMILARITIES)

    def test_lookup_by_name(self):
        assert get_similarity("jaccard") is jaccard

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigurationError):
            get_similarity("does-not-exist")
