"""Tests for the K-hop path-length generalization of SNAPLE."""

from __future__ import annotations

import math

import pytest

from repro.errors import ConfigurationError
from repro.eval.metrics import evaluate_predictions
from repro.eval.protocol import remove_random_edges
from repro.graph.digraph import DiGraph
from repro.snaple.config import SnapleConfig
from repro.snaple.khop import KHopLinkPredictor
from repro.snaple.predictor import SnapleLinkPredictor


def _config(**overrides) -> SnapleConfig:
    defaults = dict(truncation_threshold=math.inf, k_local=math.inf, seed=7)
    defaults.update(overrides)
    return SnapleConfig(**defaults)


class TestKHopConfiguration:
    def test_rejects_fewer_than_two_hops(self):
        with pytest.raises(ConfigurationError):
            KHopLinkPredictor(_config(), num_hops=1)

    def test_exposes_configuration(self):
        predictor = KHopLinkPredictor(_config(), num_hops=3)
        assert predictor.num_hops == 3
        assert math.isinf(predictor.config.k_local)

    def test_default_configuration_is_two_hops(self):
        assert KHopLinkPredictor().num_hops == 2


class TestTwoHopEquivalence:
    """With ``num_hops = 2`` the K-hop predictor is exactly Algorithm 2."""

    def test_predictions_match_the_standard_predictor(self, small_social_graph):
        config = _config()
        standard = SnapleLinkPredictor(config).predict(small_social_graph)
        khop = KHopLinkPredictor(config, num_hops=2).predict(small_social_graph)
        assert khop.predictions == standard.predictions

    def test_scores_match_the_standard_predictor(self, small_social_graph):
        config = _config()
        standard = SnapleLinkPredictor(config).predict(small_social_graph)
        khop = KHopLinkPredictor(config, num_hops=2).predict(small_social_graph)
        for u in small_social_graph.vertices():
            assert set(khop.scores[u]) == set(standard.scores[u])
            for z, value in khop.scores[u].items():
                assert value == pytest.approx(standard.scores[u][z])

    @pytest.mark.parametrize("score_name", ["counter", "PPR", "euclMean", "geomGeom"])
    def test_equivalence_across_score_configurations(self, small_social_graph,
                                                      score_name):
        config = _config().with_score(score_name)
        standard = SnapleLinkPredictor(config).predict(small_social_graph)
        khop = KHopLinkPredictor(config, num_hops=2).predict(small_social_graph)
        assert khop.predictions == standard.predictions

    def test_equivalence_with_klocal_sampling(self, small_social_graph):
        config = _config(k_local=5)
        standard = SnapleLinkPredictor(config).predict(small_social_graph)
        khop = KHopLinkPredictor(config, num_hops=2).predict(small_social_graph)
        assert khop.predictions == standard.predictions


class TestLongerPaths:
    def test_three_hops_reach_candidates_two_hops_cannot(self):
        # Chain 0 -> 1 -> 2 -> 3 plus a side edge so vertex 0 has degree > 1.
        graph = DiGraph(5, [0, 1, 2, 0], [1, 2, 3, 4])
        config = _config(k=3)
        two_hop = KHopLinkPredictor(config, num_hops=2).predict(graph)
        three_hop = KHopLinkPredictor(config, num_hops=3).predict(graph)
        assert 3 not in two_hop.scores[0]
        assert 3 in three_hop.scores[0]

    def test_candidate_space_grows_with_num_hops(self, small_social_graph):
        config = _config(k_local=5)
        two = KHopLinkPredictor(config, num_hops=2).predict(small_social_graph)
        three = KHopLinkPredictor(config, num_hops=3).predict(small_social_graph)
        candidates_two = sum(len(s) for s in two.scores.values())
        candidates_three = sum(len(s) for s in three.scores.values())
        assert candidates_three > candidates_two

    def test_paths_per_length_accounting(self, small_social_graph):
        config = _config(k_local=5)
        result = KHopLinkPredictor(config, num_hops=3).predict(small_social_graph)
        assert set(result.paths_per_length) == {2, 3}
        assert result.paths_per_length[2] > 0
        assert result.paths_per_length[3] > 0
        assert result.total_paths == sum(result.paths_per_length.values())

    def test_paths_are_simple_no_candidate_is_an_existing_neighbor(
        self, small_social_graph
    ):
        config = _config(k_local=5)
        result = KHopLinkPredictor(config, num_hops=3).predict(small_social_graph)
        for u, candidates in result.scores.items():
            existing = small_social_graph.neighbor_set(u)
            assert u not in candidates
            assert not (set(candidates) & existing)

    def test_vertices_argument_restricts_scored_sources(self, small_social_graph):
        config = _config(k_local=5)
        result = KHopLinkPredictor(config, num_hops=3).predict(
            small_social_graph, vertices=[0, 1, 2]
        )
        assert set(result.predictions) == {0, 1, 2}

    def test_recall_with_three_hops_remains_useful(self, medium_social_graph):
        # Longer paths add weaker candidates; on a clustered graph recall
        # should stay within a reasonable band of the 2-hop recall rather
        # than collapse (the ablation benchmark reports the exact trade-off).
        split = remove_random_edges(medium_social_graph, seed=3)
        config = SnapleConfig.paper_default("linearSum", k_local=10, seed=3)
        two = KHopLinkPredictor(config, num_hops=2).predict(split.train_graph)
        three = KHopLinkPredictor(config, num_hops=3).predict(split.train_graph)
        recall_two = evaluate_predictions(two.predictions, split).recall
        recall_three = evaluate_predictions(three.predictions, split).recall
        assert recall_two > 0.1
        assert recall_three > 0.5 * recall_two

    def test_predicted_edges_helper(self, small_social_graph):
        result = KHopLinkPredictor(_config(), num_hops=2).predict(small_social_graph)
        edges = result.predicted_edges()
        assert len(edges) == sum(len(t) for t in result.predictions.values())
