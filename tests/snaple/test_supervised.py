"""Unit tests for the supervised SNAPLE extension."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.eval.metrics import evaluate_predictions
from repro.eval.protocol import remove_random_edges
from repro.snaple.config import SnapleConfig
from repro.snaple.predictor import SnapleLinkPredictor
from repro.snaple.supervised import (
    LogisticRegressionModel,
    SupervisedConfig,
    SupervisedSnaplePredictor,
)


class TestLogisticRegression:
    def test_learns_a_separable_problem(self):
        rng = np.random.default_rng(0)
        features = rng.normal(size=(200, 2))
        labels = (features[:, 0] + features[:, 1] > 0).astype(int)
        model = LogisticRegressionModel().fit(features, labels)
        assert model.accuracy(features, labels) > 0.9

    def test_probabilities_in_unit_interval(self):
        features = np.array([[0.0], [1.0], [5.0], [-5.0]])
        labels = np.array([0, 1, 1, 0])
        model = LogisticRegressionModel().fit(features, labels)
        probabilities = model.predict_proba(features)
        assert np.all(probabilities >= 0.0)
        assert np.all(probabilities <= 1.0)

    def test_positive_feature_gets_positive_weight(self):
        features = np.array([[float(i)] for i in range(-10, 10)])
        labels = (features[:, 0] > 0).astype(int)
        model = LogisticRegressionModel().fit(features, labels)
        assert model.weights[0] > 0

    def test_validation(self):
        model = LogisticRegressionModel()
        with pytest.raises(ConfigurationError):
            model.fit(np.zeros((3,)), np.zeros(3))
        with pytest.raises(ConfigurationError):
            model.fit(np.zeros((3, 2)), np.zeros(2))
        with pytest.raises(ConfigurationError):
            model.fit(np.zeros((0, 2)), np.zeros(0))
        with pytest.raises(ConfigurationError):
            model.predict_proba(np.zeros((1, 2)))


class TestSupervisedConfig:
    def test_defaults(self):
        config = SupervisedConfig()
        assert "linearSum" in config.feature_scores
        assert config.k == 5

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SupervisedConfig(feature_scores=())
        with pytest.raises(ConfigurationError):
            SupervisedConfig(k=0)
        with pytest.raises(ConfigurationError):
            SupervisedConfig(negative_ratio=0)


class TestSupervisedPredictor:
    @pytest.fixture(scope="class")
    def outcome(self, random_graph):
        graph = random_graph(800, 4, 0.5, seed=11)
        split = remove_random_edges(graph, seed=5)
        config = SupervisedConfig(
            feature_scores=("linearSum", "counter", "PPR"),
            k_local=20,
            seed=5,
        )
        result = SupervisedSnaplePredictor(config).fit_predict(split.train_graph)
        return split, result

    def test_training_produces_samples_and_model(self, outcome):
        _split, result = outcome
        assert result.training_samples > 0
        assert result.model.weights is not None
        assert 0.0 <= result.training_accuracy <= 1.0

    def test_predictions_are_valid_new_edges(self, outcome):
        split, result = outcome
        graph = split.train_graph
        for vertex, targets in result.predictions.items():
            assert len(targets) <= 5
            direct = graph.neighbor_set(vertex)
            for target in targets:
                assert target != vertex
                assert target not in direct

    def test_probabilities_align_with_ranking(self, outcome):
        _split, result = outcome
        for vertex, targets in result.predictions.items():
            values = [result.probabilities[vertex][t] for t in targets]
            assert values == sorted(values, reverse=True)

    def test_recall_competitive_with_unsupervised(self, outcome):
        split, result = outcome
        supervised_recall = evaluate_predictions(result.predictions, split).recall
        unsupervised = SnapleLinkPredictor(
            SnapleConfig.paper_default("linearSum", k_local=20, seed=5)
        ).predict(split.train_graph)
        unsupervised_recall = evaluate_predictions(
            unsupervised.predictions, split
        ).recall
        # The learned combination should not collapse below the best single
        # configuration it was built from (the paper's motivation for the
        # supervised extension).
        assert supervised_recall >= 0.8 * unsupervised_recall

    def test_predicted_edges_helper(self, outcome):
        _split, result = outcome
        assert all(len(edge) == 2 for edge in result.predicted_edges())

    def test_feature_names_recorded(self, outcome):
        _split, result = outcome
        assert result.feature_names == ("linearSum", "counter", "PPR")
