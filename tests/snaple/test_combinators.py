"""Unit tests for the path combinators (Table 1)."""

from __future__ import annotations

import math

import pytest

from repro.errors import ConfigurationError
from repro.snaple.combinators import (
    COMBINATORS,
    CountCombinator,
    EuclideanCombinator,
    GeometricCombinator,
    LinearCombinator,
    SumCombinator,
    get_combinator,
)


class TestLinear:
    def test_paper_alpha_weighting(self):
        linear = LinearCombinator(alpha=0.9)
        assert linear.combine(1.0, 0.0) == pytest.approx(0.9)
        assert linear.combine(0.0, 1.0) == pytest.approx(0.1)

    def test_alpha_half_is_average(self):
        linear = LinearCombinator(alpha=0.5)
        assert linear.combine(0.2, 0.6) == pytest.approx(0.4)

    def test_invalid_alpha_rejected(self):
        with pytest.raises(ConfigurationError):
            LinearCombinator(alpha=1.5)
        with pytest.raises(ConfigurationError):
            LinearCombinator(alpha=-0.1)

    def test_repr_shows_alpha(self):
        assert "0.7" in repr(LinearCombinator(alpha=0.7))


class TestOtherCombinators:
    def test_euclidean_matches_table1(self):
        eucl = EuclideanCombinator()
        assert eucl.combine(3.0, 4.0) == pytest.approx(5.0)

    def test_geometric_matches_table1(self):
        geom = GeometricCombinator()
        assert geom.combine(4.0, 9.0) == pytest.approx(6.0)

    def test_geometric_zero_on_zero_input(self):
        geom = GeometricCombinator()
        assert geom.combine(0.0, 0.5) == 0.0

    def test_sum(self):
        assert SumCombinator().combine(0.2, 0.3) == pytest.approx(0.5)

    def test_count_always_one(self):
        count = CountCombinator()
        assert count.combine(0.0, 0.0) == 1.0
        assert count.combine(100.0, 5.0) == 1.0


class TestMonotonicity:
    @pytest.mark.parametrize("name", ["linear", "eucl", "geom", "sum"])
    def test_monotone_in_both_arguments(self, name):
        # Table 1 requires the combinator to be monotonically increasing.
        combinator = get_combinator(name)
        base = combinator.combine(0.3, 0.4)
        assert combinator.combine(0.5, 0.4) >= base
        assert combinator.combine(0.3, 0.6) >= base


class TestFoldAndRegistry:
    def test_fold_empty(self):
        assert get_combinator("sum").fold([]) == 0.0

    def test_fold_single(self):
        assert get_combinator("sum").fold([0.7]) == pytest.approx(0.7)

    def test_fold_many(self):
        assert get_combinator("sum").fold([0.1, 0.2, 0.3]) == pytest.approx(0.6)

    def test_fold_linear_is_left_fold(self):
        # fold([1, 0, 0]) = combine(combine(1, 0), 0) = combine(0.5, 0) = 0.25
        linear = LinearCombinator(alpha=0.5)
        assert linear.fold([1.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_registry_contains_all_table1_rows(self):
        assert set(COMBINATORS) == {"linear", "eucl", "geom", "sum", "count"}

    def test_callable_interface(self):
        assert get_combinator("sum")(1.0, 2.0) == 3.0

    def test_alpha_override_only_for_linear(self):
        custom = get_combinator("linear", alpha=0.25)
        assert isinstance(custom, LinearCombinator)
        assert custom.alpha == 0.25
        with pytest.raises(ConfigurationError):
            get_combinator("geom", alpha=0.5)

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigurationError):
            get_combinator("quadratic")

    def test_outputs_are_finite(self):
        for combinator in COMBINATORS.values():
            assert math.isfinite(combinator.combine(0.9, 0.7))
