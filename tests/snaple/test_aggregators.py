"""Unit tests for the path aggregators (Table 2)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.snaple.aggregators import (
    AGGREGATORS,
    GeometricMeanAggregator,
    MaxAggregator,
    MeanAggregator,
    SumAggregator,
    get_aggregator,
)


class TestSum:
    def test_aggregate(self):
        assert SumAggregator().aggregate([0.1, 0.2, 0.3]) == pytest.approx(0.6)

    def test_empty(self):
        assert SumAggregator().aggregate([]) == 0.0

    def test_single(self):
        assert SumAggregator().aggregate([0.4]) == pytest.approx(0.4)

    def test_rewards_path_multiplicity(self):
        # Sum gives a candidate reached over many mediocre paths a higher
        # score than one reached over a single good path — the paper's
        # popularity effect.
        many_paths = SumAggregator().aggregate([0.3, 0.3, 0.3])
        one_path = SumAggregator().aggregate([0.6])
        assert many_paths > one_path


class TestMean:
    def test_aggregate(self):
        assert MeanAggregator().aggregate([0.2, 0.4]) == pytest.approx(0.3)

    def test_ignores_path_multiplicity(self):
        repeated = MeanAggregator().aggregate([0.3, 0.3, 0.3])
        single = MeanAggregator().aggregate([0.3])
        assert repeated == pytest.approx(single)

    def test_post_zero_count(self):
        assert MeanAggregator().post(1.0, 0) == 0.0


class TestGeom:
    def test_aggregate(self):
        assert GeometricMeanAggregator().aggregate([4.0, 9.0]) == pytest.approx(6.0)

    def test_zero_path_kills_score(self):
        # The paper notes Geom penalizes candidates connected through any
        # zero-similarity path (vertex e in Figure 3).
        assert GeometricMeanAggregator().aggregate([0.0, 0.9, 0.9]) == 0.0

    def test_identity_is_one(self):
        assert GeometricMeanAggregator().identity() == 1.0

    def test_post_zero_count(self):
        assert GeometricMeanAggregator().post(1.0, 0) == 0.0


class TestMax:
    def test_aggregate(self):
        assert MaxAggregator().aggregate([0.1, 0.7, 0.3]) == pytest.approx(0.7)

    def test_single(self):
        assert MaxAggregator().aggregate([0.2]) == pytest.approx(0.2)


class TestDecomposition:
    @pytest.mark.parametrize("name", ["Sum", "Mean", "Geom", "Max"])
    def test_incremental_pre_post_matches_aggregate(self, name):
        # ⊕ must decompose into an incremental ⊕pre and a final ⊕post
        # (equation (10)); this is what lets the GAS sum compute it.
        aggregator = get_aggregator(name)
        values = [0.25, 0.5, 0.75, 0.1]
        accumulated = values[0]
        for value in values[1:]:
            accumulated = aggregator.pre(accumulated, value)
        assert aggregator.post(accumulated, len(values)) == pytest.approx(
            aggregator.aggregate(values)
        )

    @pytest.mark.parametrize("name", ["Sum", "Mean", "Geom", "Max"])
    def test_pre_is_commutative(self, name):
        aggregator = get_aggregator(name)
        assert aggregator.pre(0.3, 0.8) == pytest.approx(aggregator.pre(0.8, 0.3))

    @pytest.mark.parametrize("name", ["Sum", "Mean", "Geom", "Max"])
    def test_pre_is_associative(self, name):
        aggregator = get_aggregator(name)
        left = aggregator.pre(aggregator.pre(0.2, 0.5), 0.9)
        right = aggregator.pre(0.2, aggregator.pre(0.5, 0.9))
        assert left == pytest.approx(right)


class TestRegistry:
    def test_paper_aggregators_present(self):
        assert {"Sum", "Mean", "Geom"} <= set(AGGREGATORS)

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigurationError):
            get_aggregator("median")

    def test_lookup_is_case_sensitive(self):
        with pytest.raises(ConfigurationError):
            get_aggregator("sum")
