"""Tests for the content-aware SNAPLE extension."""

from __future__ import annotations

import math

import pytest

from repro.errors import ConfigurationError
from repro.eval.metrics import evaluate_predictions
from repro.eval.protocol import remove_random_edges
from repro.graph.attributes import generate_profiles
from repro.snaple.config import SnapleConfig
from repro.snaple.content import (
    ContentAwareLinkPredictor,
    ContentConfig,
    get_profile_similarity,
)
from repro.snaple.predictor import SnapleLinkPredictor


def _snaple_config(**overrides) -> SnapleConfig:
    defaults = dict(truncation_threshold=math.inf, k_local=math.inf, seed=9)
    defaults.update(overrides)
    return SnapleConfig(**defaults)


class TestContentConfig:
    def test_rejects_out_of_range_content_weight(self):
        with pytest.raises(ConfigurationError):
            ContentConfig(content_weight=1.5)

    def test_rejects_unknown_profile_similarity(self):
        with pytest.raises(ConfigurationError):
            ContentConfig(profile_similarity_name="does-not-exist")

    def test_get_profile_similarity_lookup(self):
        assert get_profile_similarity("cosine") is not None
        with pytest.raises(ConfigurationError):
            get_profile_similarity("nope")

    def test_describe_mentions_weight_and_similarity(self):
        config = ContentConfig(content_weight=0.3, profile_similarity_name="cosine")
        description = config.describe()
        assert "0.30" in description
        assert "cosine" in description


class TestTopologicalEquivalence:
    """``content_weight = 0`` must reproduce the paper's predictor exactly."""

    def test_zero_weight_matches_standard_predictions(self, small_social_graph):
        snaple = _snaple_config()
        profiles = generate_profiles(small_social_graph, seed=1)
        standard = SnapleLinkPredictor(snaple).predict(small_social_graph)
        content = ContentAwareLinkPredictor(
            ContentConfig(snaple=snaple, content_weight=0.0)
        ).predict(small_social_graph, profiles)
        assert content.predictions == standard.predictions

    def test_zero_weight_matches_standard_scores(self, small_social_graph):
        snaple = _snaple_config()
        profiles = generate_profiles(small_social_graph, seed=1)
        standard = SnapleLinkPredictor(snaple).predict(small_social_graph)
        content = ContentAwareLinkPredictor(
            ContentConfig(snaple=snaple, content_weight=0.0)
        ).predict(small_social_graph, profiles)
        for u in small_social_graph.vertices():
            for z, value in content.scores[u].items():
                assert value == pytest.approx(standard.scores[u][z])

    @pytest.mark.parametrize("score_name", ["counter", "PPR", "euclSum"])
    def test_zero_weight_equivalence_for_other_scores(self, small_social_graph,
                                                      score_name):
        snaple = _snaple_config().with_score(score_name)
        profiles = generate_profiles(small_social_graph, seed=1)
        standard = SnapleLinkPredictor(snaple).predict(small_social_graph)
        content = ContentAwareLinkPredictor(
            ContentConfig(snaple=snaple, content_weight=0.0)
        ).predict(small_social_graph, profiles)
        assert content.predictions == standard.predictions


class TestContentAwarePrediction:
    def test_rejects_profiles_that_do_not_cover_the_graph(self, small_social_graph,
                                                          random_graph):
        tiny_graph = random_graph(50, 2, 0.3, seed=2)
        profiles = generate_profiles(tiny_graph, seed=2)
        with pytest.raises(ConfigurationError):
            ContentAwareLinkPredictor().predict(small_social_graph, profiles)

    def test_predictions_exclude_existing_neighbors(self, small_social_graph):
        profiles = generate_profiles(small_social_graph, seed=4)
        result = ContentAwareLinkPredictor(
            ContentConfig(snaple=_snaple_config(), content_weight=0.5)
        ).predict(small_social_graph, profiles)
        for u, targets in result.predictions.items():
            assert not (set(targets) & small_social_graph.neighbor_set(u))
            assert u not in targets

    def test_content_weight_changes_the_ranking(self, medium_social_graph):
        profiles = generate_profiles(medium_social_graph, homophily=0.9, seed=5)
        snaple = _snaple_config(k_local=10)
        topo = ContentAwareLinkPredictor(
            ContentConfig(snaple=snaple, content_weight=0.0)
        ).predict(medium_social_graph, profiles)
        blended = ContentAwareLinkPredictor(
            ContentConfig(snaple=snaple, content_weight=0.8)
        ).predict(medium_social_graph, profiles)
        assert topo.predictions != blended.predictions

    def test_homophilous_content_does_not_hurt_recall(self, medium_social_graph):
        """With strongly homophilous profiles a moderate content weight keeps
        recall within a small band of the purely topological recall (and the
        ablation benchmark reports where it actually helps)."""
        split = remove_random_edges(medium_social_graph, seed=6)
        profiles = generate_profiles(
            split.train_graph, homophily=0.95, tags_per_vertex=8, seed=6
        )
        snaple = SnapleConfig.paper_default("linearSum", k_local=20, seed=6)
        topo = ContentAwareLinkPredictor(
            ContentConfig(snaple=snaple, content_weight=0.0)
        ).predict(split.train_graph, profiles)
        blended = ContentAwareLinkPredictor(
            ContentConfig(snaple=snaple, content_weight=0.3)
        ).predict(split.train_graph, profiles)
        recall_topo = evaluate_predictions(topo.predictions, split).recall
        recall_blended = evaluate_predictions(blended.predictions, split).recall
        assert recall_topo > 0.1
        assert recall_blended > 0.8 * recall_topo

    def test_vertices_argument_restricts_scored_sources(self, small_social_graph):
        profiles = generate_profiles(small_social_graph, seed=7)
        result = ContentAwareLinkPredictor().predict(
            small_social_graph, profiles, vertices=[0, 1]
        )
        assert set(result.predictions) == {0, 1}

    def test_predicted_edges_helper(self, small_social_graph):
        profiles = generate_profiles(small_social_graph, seed=8)
        result = ContentAwareLinkPredictor().predict(small_social_graph, profiles)
        edges = result.predicted_edges()
        assert len(edges) == sum(len(t) for t in result.predictions.values())

    def test_pure_content_weight_still_produces_predictions(self, small_social_graph):
        profiles = generate_profiles(small_social_graph, homophily=0.9, seed=9)
        result = ContentAwareLinkPredictor(
            ContentConfig(snaple=_snaple_config(), content_weight=1.0)
        ).predict(small_social_graph, profiles)
        assert any(result.predictions.values())
