"""Parity harness for the vectorized scoring kernel (`repro.snaple.kernel`).

The vectorized ``local`` mode must be indistinguishable from the scalar
reference across the whole scoring design space: every similarity in
``SIMILARITIES``, every Table 3 configuration, every sampling policy, with
and without probabilistic truncation, on full runs and vertex subsets.
Predictions are asserted exactly; scores are asserted exactly too (the
kernel preserves the reference float fold order), with ``REL_TOL`` as the
documented fallback for platforms whose ``pow`` is not correctly rounded.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.graph.generators import erdos_renyi
from repro.runtime import get_backend
from repro.snaple.aggregators import get_aggregator
from repro.snaple.combinators import get_combinator
from repro.snaple.config import SnapleConfig
from repro.snaple.kernel import REL_TOL, LazyScores, kernel_supports
from repro.snaple.sampler import get_sampler
from repro.snaple.scoring import PAPER_SCORES, ScoreConfig
from repro.snaple.similarity import SIMILARITIES


def run_mode(graph, config, mode, vertices=None):
    backend = get_backend("local", mode=mode).prepare(graph, config)
    return backend.run(vertices=vertices)


def assert_parity(graph, config, vertices=None):
    reference = run_mode(graph, config, "reference", vertices)
    vectorized = run_mode(graph, config, "vectorized", vertices)
    assert vectorized.extra["kernel_vectorized"] == 1.0, \
        "configuration unexpectedly fell back to the scalar path"
    assert vectorized.predictions == reference.predictions
    assert_scores_match(vectorized.scores, reference.scores)


def assert_scores_match(left, right):
    assert len(left) == len(right)
    for u in right:
        left_u, right_u = left[u], right[u]
        assert left_u.keys() == right_u.keys()
        for z, expected in right_u.items():
            got = left_u[z]
            if got != expected:  # bit-exact on CI; REL_TOL covers odd libms
                assert got == pytest.approx(expected, rel=REL_TOL)


def score_for_similarity(similarity_name: str) -> ScoreConfig:
    return ScoreConfig(
        name=f"parity-{similarity_name}",
        similarity_name=similarity_name,
        combinator=get_combinator("linear"),
        aggregator=get_aggregator("Sum"),
    )


class TestKernelParityAcrossDesignSpace:
    @pytest.mark.parametrize("similarity_name", sorted(SIMILARITIES))
    def test_every_similarity(self, similarity_name, random_graph):
        graph = random_graph(150, 3, 0.3, seed=11)
        config = SnapleConfig(
            k=5,
            score=score_for_similarity(similarity_name),
            truncation_threshold=5,
            k_local=6,
            sampler=get_sampler("max"),
            seed=7,
        )
        assert kernel_supports(config)
        assert_parity(graph, config)

    @pytest.mark.parametrize("score_name", sorted(PAPER_SCORES))
    def test_every_paper_score(self, score_name, random_graph):
        graph = random_graph(150, 3, 0.3, seed=11)
        config = SnapleConfig(
            k=5,
            score=PAPER_SCORES[score_name],
            truncation_threshold=6,
            k_local=8,
            sampler=get_sampler("max"),
            seed=3,
        )
        assert_parity(graph, config)

    @pytest.mark.parametrize("sampler_name", ["max", "min", "rnd"])
    @pytest.mark.parametrize("threshold", [math.inf, 4])
    def test_samplers_and_truncation(self, sampler_name, threshold, random_graph):
        graph = random_graph(120, 3, 0.3, seed=5)
        config = SnapleConfig(
            k=4,
            score=PAPER_SCORES["linearSum"],
            truncation_threshold=threshold,
            k_local=5,
            sampler=get_sampler(sampler_name),
            seed=13,
        )
        assert_parity(graph, config)

    def test_unsampled_run(self, random_graph):
        graph = random_graph(90, model="erdos_renyi", edge_probability=0.08,
                             seed=2)
        config = SnapleConfig.paper_default(
            seed=1, k_local=math.inf, truncation_threshold=math.inf
        )
        assert_parity(graph, config)

    def test_vertex_subset_and_batching(self, random_graph):
        graph = random_graph(150, 3, 0.3, seed=11)
        config = SnapleConfig.paper_default(seed=3, k_local=10)
        subset = list(range(0, 150, 4))
        assert_parity(graph, config, vertices=subset)
        # Incremental runs over batches must agree with one full run.
        backend = get_backend("local", mode="vectorized").prepare(graph, config)
        full = backend.run()
        merged: dict[int, list[int]] = {}
        batch_backend = get_backend("local", mode="vectorized").prepare(graph, config)
        for start in range(0, 150, 37):
            batch = list(range(start, min(start + 37, 150)))
            merged.update(batch_backend.run(vertices=batch).predictions)
        assert merged == full.predictions

    @pytest.mark.slow
    def test_acceptance_1k_vertex_graph(self, random_graph):
        """Fixed-seed 1k-vertex case mirroring test_parallel_parity."""
        graph = random_graph(1000, 3, 0.2, seed=42)
        config = SnapleConfig.paper_default(seed=42, k_local=10)
        reference = run_mode(graph, config, "reference")
        vectorized = run_mode(graph, config, "vectorized")
        assert vectorized.predictions == reference.predictions
        assert_scores_match(vectorized.scores, reference.scores)
        assert vectorized.predictions  # non-degenerate
        assert any(vectorized.predictions.values())


class TestKernelParityProperty:
    @settings(max_examples=25, deadline=None)
    @given(
        num_vertices=st.integers(min_value=5, max_value=60),
        edge_probability=st.floats(min_value=0.02, max_value=0.3),
        graph_seed=st.integers(min_value=0, max_value=2**20),
        similarity_name=st.sampled_from(sorted(SIMILARITIES)),
        threshold=st.sampled_from([math.inf, 2, 3, 5]),
        k_local=st.sampled_from([math.inf, 2, 4]),
        sampler_name=st.sampled_from(["max", "min", "rnd"]),
    )
    def test_random_graphs_random_configs(self, num_vertices, edge_probability,
                                          graph_seed, similarity_name,
                                          threshold, k_local, sampler_name):
        graph = erdos_renyi(num_vertices, edge_probability, seed=graph_seed)
        config = SnapleConfig(
            k=3,
            score=score_for_similarity(similarity_name),
            truncation_threshold=threshold,
            k_local=k_local,
            sampler=get_sampler(sampler_name),
            seed=graph_seed % 101,
        )
        reference = run_mode(graph, config, "reference")
        vectorized = run_mode(graph, config, "vectorized")
        assert vectorized.predictions == reference.predictions
        assert_scores_match(vectorized.scores, reference.scores)


class TestModeSelection:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigurationError, match="mode"):
            get_backend("local", mode="turbo")

    def test_mode_advertised_in_capabilities(self):
        capabilities = get_backend("local").capabilities()
        assert "mode" in capabilities.options

    def test_unsupported_config_falls_back_to_reference(self, random_graph):
        graph = random_graph(40, model="erdos_renyi", edge_probability=0.1,
                             seed=1)
        custom = ScoreConfig(
            name="custom",
            similarity_name="jaccard",
            combinator=get_combinator("linear"),
            aggregator=get_aggregator("Sum"),
            similarity=lambda a, b: 1.0,  # not the registry callable
        )
        config = SnapleConfig(score=custom)
        assert not kernel_supports(config)
        report = get_backend("local", mode="vectorized").prepare(graph, config).run()
        assert report.extra["kernel_vectorized"] == 0.0
        assert report.predictions


class TestLazyScores:
    @pytest.fixture
    def reports(self, random_graph):
        graph = random_graph(80, 3, 0.3, seed=4)
        config = SnapleConfig.paper_default(seed=4, k_local=6)
        return (run_mode(graph, config, "vectorized"),
                run_mode(graph, config, "reference"))

    def test_scores_are_lazy_but_equal_both_ways(self, reports):
        vectorized, reference = reports
        assert isinstance(vectorized.scores, LazyScores)
        assert vectorized.scores == reference.scores
        assert reference.scores == vectorized.scores

    def test_mapping_protocol(self, reports):
        vectorized, reference = reports
        scores = vectorized.scores
        assert len(scores) == len(reference.scores)
        assert list(scores) == list(reference.scores)
        assert set(scores.keys()) == set(reference.scores.keys())
        assert 0 in scores
        assert scores.get(10**9) is None
        with pytest.raises(KeyError):
            scores[10**9]
        assert dict(scores) == reference.scores
        assert scores.materialize() == reference.scores

    def test_length_mismatch_not_equal(self, reports):
        vectorized, reference = reports
        smaller = dict(reference.scores)
        smaller.popitem()
        assert vectorized.scores != smaller
