"""Unit tests for the SNAPLE predictor configuration."""

from __future__ import annotations

import math

import pytest

from repro.errors import ConfigurationError
from repro.snaple.config import SnapleConfig


class TestDefaults:
    def test_paper_defaults(self):
        config = SnapleConfig()
        assert config.k == 5
        assert config.score.name == "linearSum"
        assert config.truncation_threshold == 200.0
        assert math.isinf(config.k_local)
        assert config.sampler.name == "max"

    def test_paper_default_constructor(self):
        config = SnapleConfig.paper_default("counter", k_local=40)
        assert config.score.name == "counter"
        assert config.k_local == 40
        assert config.truncation_threshold == 200

    def test_paper_default_linear_alpha(self):
        config = SnapleConfig.paper_default("linearSum", alpha=0.9)
        assert config.score.combinator.alpha == pytest.approx(0.9)

    def test_paper_default_custom_alpha(self):
        config = SnapleConfig.paper_default("linearMean", alpha=0.4)
        assert config.score.combinator.alpha == pytest.approx(0.4)


class TestValidation:
    def test_k_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            SnapleConfig(k=0)

    def test_truncation_threshold_validation(self):
        with pytest.raises(ConfigurationError):
            SnapleConfig(truncation_threshold=0.5)
        SnapleConfig(truncation_threshold=math.inf)  # allowed

    def test_k_local_validation(self):
        with pytest.raises(ConfigurationError):
            SnapleConfig(k_local=0)
        SnapleConfig(k_local=math.inf)  # allowed


class TestCopies:
    def test_with_score(self):
        config = SnapleConfig().with_score("counter")
        assert config.score.name == "counter"

    def test_with_k_local(self):
        assert SnapleConfig().with_k_local(40).k_local == 40

    def test_with_truncation(self):
        assert SnapleConfig().with_truncation(20).truncation_threshold == 20

    def test_with_sampler(self):
        assert SnapleConfig().with_sampler("rnd").sampler.name == "rnd"

    def test_with_k(self):
        assert SnapleConfig().with_k(15).k == 15

    def test_copies_do_not_mutate_original(self):
        original = SnapleConfig()
        original.with_k(20)
        assert original.k == 5

    def test_describe_mentions_parameters(self):
        text = SnapleConfig.paper_default("PPR", k_local=20,
                                          truncation_threshold=40).describe()
        assert "PPR" in text
        assert "thrΓ=40" in text
        assert "klocal=20" in text
        assert "Γmax" in text

    def test_describe_infinite_values(self):
        text = SnapleConfig().describe()
        assert "klocal=inf" in text
