"""Unit tests for the Table 3 scoring configurations."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.snaple.scoring import (
    GEOM_FAMILY,
    MEAN_FAMILY,
    PAPER_SCORES,
    SUM_FAMILY,
    paper_score_names,
    score_config,
)


class TestTable3Registry:
    def test_eleven_configurations(self):
        # Nine Jaccard combinations plus PPR and counter (Table 3).
        assert len(PAPER_SCORES) == 11

    def test_all_names_present(self):
        expected = {
            "linearSum", "euclSum", "geomSum", "PPR", "counter",
            "linearMean", "euclMean", "geomMean",
            "linearGeom", "euclGeom", "geomGeom",
        }
        assert set(PAPER_SCORES) == expected

    def test_families_partition_the_names(self):
        families = set(SUM_FAMILY) | set(MEAN_FAMILY) | set(GEOM_FAMILY)
        assert families == set(PAPER_SCORES)
        assert not set(SUM_FAMILY) & set(MEAN_FAMILY)
        assert not set(MEAN_FAMILY) & set(GEOM_FAMILY)

    def test_paper_score_names_order(self):
        names = paper_score_names()
        assert names[: len(SUM_FAMILY)] == list(SUM_FAMILY)
        assert len(names) == 11

    def test_jaccard_rows_use_jaccard(self):
        for name in ("linearSum", "euclMean", "geomGeom"):
            assert score_config(name).similarity_name == "jaccard"

    def test_ppr_row_matches_table3(self):
        ppr = score_config("PPR")
        assert ppr.similarity_name == "inverse_degree"
        assert ppr.combinator.name == "sum"
        assert ppr.aggregator.name == "Sum"

    def test_counter_row_matches_table3(self):
        counter = score_config("counter")
        assert counter.similarity_name == "one"
        assert counter.combinator.name == "count"
        assert counter.aggregator.name == "Sum"

    def test_name_encodes_combinator_and_aggregator(self):
        config = score_config("euclMean")
        assert config.combinator.name == "eucl"
        assert config.aggregator.name == "Mean"


class TestConfigBehaviour:
    def test_unknown_score_raises(self):
        with pytest.raises(ConfigurationError):
            score_config("magic")

    def test_alpha_override(self):
        config = score_config("linearSum", alpha=0.5)
        assert config.combinator.alpha == 0.5

    def test_alpha_override_rejected_for_non_linear(self):
        with pytest.raises(ConfigurationError):
            score_config("euclSum", alpha=0.5)

    def test_with_alpha_copy(self):
        original = score_config("linearMean")
        copy = original.with_alpha(0.3)
        assert copy.combinator.alpha == 0.3
        assert original.combinator.alpha == 0.9

    def test_with_alpha_rejected_for_non_linear(self):
        with pytest.raises(ConfigurationError):
            score_config("counter").with_alpha(0.5)

    def test_describe_mentions_components(self):
        text = score_config("geomSum").describe()
        assert "geom" in text
        assert "Sum" in text
        assert "jaccard" in text

    def test_similarity_function_resolved(self):
        config = score_config("linearSum")
        assert config.similarity([1, 2], [1, 2]) == pytest.approx(1.0)
