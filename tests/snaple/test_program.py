"""Unit tests for Algorithm 2 (the three GAS steps) and its helpers."""

from __future__ import annotations

import math
import random

import pytest

from repro.gas.engine import GasEngine
from repro.graph.digraph import DiGraph
from repro.snaple.config import SnapleConfig
from repro.snaple.program import build_snaple_steps, top_k_predictions


class TestTopK:
    def test_orders_by_score_descending(self):
        scores = {1: 0.2, 2: 0.9, 3: 0.5}
        assert top_k_predictions(scores, 2) == [2, 3]

    def test_ties_broken_by_vertex_id(self):
        scores = {5: 0.5, 3: 0.5, 9: 0.5}
        assert top_k_predictions(scores, 3) == [3, 5, 9]

    def test_k_larger_than_candidates(self):
        assert top_k_predictions({1: 0.1}, 10) == [1]

    def test_empty_scores(self):
        assert top_k_predictions({}, 5) == []


class TestStepSequence:
    def test_three_steps_in_order(self, small_social_graph):
        steps = build_snaple_steps(SnapleConfig(), small_social_graph)
        assert [step.name for step in steps] == [
            "sample-neighborhood",
            "estimate-similarities",
            "compute-recommendations",
        ]

    def test_step1_collects_full_neighborhood_without_truncation(self, small_social_graph):
        config = SnapleConfig(truncation_threshold=math.inf)
        engine = GasEngine(graph=small_social_graph)
        result = engine.run(build_snaple_steps(config, small_social_graph))
        for vertex in range(0, 50, 5):
            assert result.data_of(vertex)["gamma"] == sorted(
                small_social_graph.out_neighbors(vertex).tolist()
            )

    def test_step1_truncates_large_neighborhoods(self, star_graph):
        config = SnapleConfig(truncation_threshold=3, exact_truncation=True, seed=1)
        engine = GasEngine(graph=star_graph)
        result = engine.run(build_snaple_steps(config, star_graph))
        assert len(result.data_of(0)["gamma"]) <= 3

    def test_step2_limits_to_k_local(self, small_social_graph):
        config = SnapleConfig(k_local=3)
        engine = GasEngine(graph=small_social_graph)
        result = engine.run(build_snaple_steps(config, small_social_graph))
        for vertex in range(small_social_graph.num_vertices):
            assert len(result.data_of(vertex)["sims"]) <= 3

    def test_step2_similarities_are_jaccard(self):
        # Graph: 0 -> {1, 2}, 1 -> {2}, 2 -> {1}: sim(1, 2) uses Γ(1)={2} and
        # Γ(2)={1}, which are disjoint, so the similarity is 0; sim(0, 1)
        # compares {1, 2} with {2} giving 1/2.
        graph = DiGraph(3, [0, 0, 1, 2], [1, 2, 2, 1])
        config = SnapleConfig(k_local=math.inf, truncation_threshold=math.inf)
        engine = GasEngine(graph=graph)
        result = engine.run(build_snaple_steps(config, graph))
        assert result.data_of(0)["sims"][1] == pytest.approx(0.5)
        assert result.data_of(1)["sims"][2] == pytest.approx(0.0)

    def test_step3_excludes_direct_neighbors_and_self(self, small_social_graph):
        config = SnapleConfig()
        engine = GasEngine(graph=small_social_graph)
        result = engine.run(build_snaple_steps(config, small_social_graph))
        for vertex in range(small_social_graph.num_vertices):
            direct = set(small_social_graph.out_neighbors(vertex).tolist())
            for predicted in result.data_of(vertex)["predicted"]:
                assert predicted != vertex
                assert predicted not in direct

    def test_step3_returns_at_most_k(self, small_social_graph):
        config = SnapleConfig(k=3)
        engine = GasEngine(graph=small_social_graph)
        result = engine.run(build_snaple_steps(config, small_social_graph))
        for vertex in range(small_social_graph.num_vertices):
            assert len(result.data_of(vertex)["predicted"]) <= 3

    def test_counter_score_counts_two_hop_paths(self):
        # 0 -> {1, 2}; 1 -> {3}; 2 -> {3}: vertex 3 is reachable from 0 over
        # exactly two 2-hop paths, so the counter score must be 2.
        graph = DiGraph(4, [0, 0, 1, 2], [1, 2, 3, 3])
        config = SnapleConfig.paper_default("counter",
                                            k_local=math.inf,
                                            truncation_threshold=math.inf)
        steps = build_snaple_steps(config, graph)
        GasEngine(graph=graph).run(steps)
        assert steps[-1].collected_scores[0][3] == pytest.approx(2.0)

    def test_candidates_not_in_truncated_neighborhood(self, paper_figure3_graph):
        config = SnapleConfig()
        steps = build_snaple_steps(config, paper_figure3_graph)
        GasEngine(graph=paper_figure3_graph).run(steps)
        # Vertex a (id 0) should only ever score e, f, g (ids 5, 6, 7) — the
        # 2-hop candidates of Figure 3.
        candidate_labels = set(steps[-1].collected_scores[0])
        assert candidate_labels <= {5, 6, 7}

    def test_vertex_data_keeps_only_compact_state(self, small_social_graph):
        # Algorithm 2 only persists Γ̂, sims and the top-k predictions in the
        # vertex data; the full candidate score map must not be replicated.
        config = SnapleConfig(k_local=10)
        steps = build_snaple_steps(config, small_social_graph)
        result = GasEngine(graph=small_social_graph).run(steps)
        assert "scores" not in result.data_of(0)
        assert set(result.data_of(0)) <= {"gamma", "sims", "predicted"}


class TestTopKHeapEquivalence:
    """The heap-based top_k_predictions must equal the historical full sort."""

    @staticmethod
    def sorted_reference(scores, k):
        ranked = sorted(scores.items(), key=lambda item: (-item[1], item[0]))
        return [vertex for vertex, _ in ranked[:k]]

    def test_equivalent_on_random_score_maps_with_ties(self):
        rng = random.Random(0)
        for trial in range(200):
            n = rng.randint(0, 40)
            # Draw from a small value set so ties are common.
            scores = {
                rng.randrange(1000): rng.choice([0.0, 0.25, 0.5, 0.5, 1.0, 2.0])
                for _ in range(n)
            }
            k = rng.randint(1, 8)
            assert top_k_predictions(scores, k) == \
                self.sorted_reference(scores, k), (trial, scores, k)

    def test_equivalent_when_k_exceeds_size(self):
        scores = {3: 1.0, 1: 1.0, 2: 0.5}
        assert top_k_predictions(scores, 10) == \
            self.sorted_reference(scores, 10) == [1, 3, 2]
