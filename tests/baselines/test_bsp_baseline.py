"""Tests for the naive 2-hop BASELINE ported to the BSP substrate."""

from __future__ import annotations

import math

import pytest

from repro.baselines.bsp_baseline import BspBaselinePredictor
from repro.baselines.gas_baseline import GasBaselinePredictor
from repro.errors import ResourceExhaustedError
from repro.eval.metrics import evaluate_predictions
from repro.eval.protocol import remove_random_edges
from repro.gas.cluster import TYPE_I, TYPE_II, ClusterConfig, cluster_of
from repro.snaple.bsp_program import SnapleBspPredictor
from repro.snaple.config import SnapleConfig


class TestBspBaselinePredictions:
    def test_predictions_exclude_existing_neighbors(self, small_social_graph):
        result = BspBaselinePredictor(k=5).predict(small_social_graph)
        for u, targets in result.predictions.items():
            assert not (set(targets) & small_social_graph.neighbor_set(u))
            assert u not in targets

    def test_matches_the_gas_baseline_predictions(self, small_social_graph):
        """Both ports implement the same Algorithm 1 restriction, so they
        must return the same candidates and scores."""
        bsp = BspBaselinePredictor(k=5).predict(small_social_graph)
        gas = GasBaselinePredictor(k=5).predict_gas(
            small_social_graph, cluster=cluster_of(TYPE_II, 2), enforce_memory=False
        )
        assert bsp.predictions == gas.predictions

    def test_scores_are_jaccard_values(self, small_social_graph):
        result = BspBaselinePredictor(k=5).predict(small_social_graph)
        for scores in result.scores.values():
            assert all(0.0 <= value <= 1.0 for value in scores.values())

    def test_runs_exactly_four_supersteps(self, small_social_graph):
        result = BspBaselinePredictor(k=5).predict(small_social_graph)
        assert result.bsp_result.supersteps == 4

    def test_recall_is_non_trivial_on_clustered_graph(self, medium_social_graph):
        split = remove_random_edges(medium_social_graph, seed=2)
        result = BspBaselinePredictor(k=5).predict(split.train_graph)
        quality = evaluate_predictions(result.predictions, split)
        assert quality.recall > 0.05

    def test_predicted_edges_helper(self, small_social_graph):
        result = BspBaselinePredictor(k=3).predict(small_social_graph)
        assert len(result.predicted_edges()) == sum(
            len(t) for t in result.predictions.values()
        )


class TestBspBaselineCost:
    def test_baseline_ships_far_more_bytes_than_snaple_bsp(self, medium_social_graph):
        """The paper's motivating observation, in message-passing form: the
        2-hop neighborhood forwarding dwarfs SNAPLE's bounded messages."""
        cluster = cluster_of(TYPE_I, 4)
        baseline = BspBaselinePredictor(k=5).predict(
            medium_social_graph, cluster=cluster, enforce_memory=False
        )
        config = SnapleConfig.paper_default("linearSum", k_local=20, seed=1)
        snaple = SnapleBspPredictor(config).predict(
            medium_social_graph, cluster=cluster, enforce_memory=False
        )
        baseline_bytes = baseline.bsp_result.metrics.total_network_bytes
        snaple_bytes = snaple.bsp_result.metrics.total_network_bytes
        assert baseline_bytes > 2 * snaple_bytes

    def test_baseline_exhausts_memory_where_snaple_survives(self, medium_social_graph):
        """Reproduces the paper's resource-exhaustion failure on the BSP port:
        a memory budget SNAPLE fits in is not enough for the BASELINE's
        forwarded 2-hop neighborhoods."""
        config = SnapleConfig.paper_default("linearSum", k_local=20, seed=1)
        # ~670 KiB per simulated machine: enough for SNAPLE's bounded vertex
        # data and messages, far too small for forwarded 2-hop neighborhoods.
        cluster = ClusterConfig(machine=TYPE_I, num_machines=4, memory_scale=2e-5)
        snaple = SnapleBspPredictor(config).predict(
            medium_social_graph, cluster=cluster
        )
        assert snaple.predictions  # completed under the constrained budget
        with pytest.raises(ResourceExhaustedError):
            BspBaselinePredictor(k=5).predict(medium_social_graph, cluster=cluster)

    def test_memory_enforcement_can_be_disabled(self, medium_social_graph):
        cluster = ClusterConfig(machine=TYPE_I, num_machines=4, memory_scale=1e-8)
        result = BspBaselinePredictor(k=5).predict(
            medium_social_graph, cluster=cluster, enforce_memory=False
        )
        assert result.bsp_result.metrics.peak_machine_memory_bytes > 0

    def test_simulated_time_exceeds_snaple_bsp(self, medium_social_graph):
        cluster = cluster_of(TYPE_I, 4)
        baseline = BspBaselinePredictor(k=5).predict(
            medium_social_graph, cluster=cluster, enforce_memory=False
        )
        config = SnapleConfig.paper_default("linearSum", k_local=20, seed=1)
        snaple = SnapleBspPredictor(config).predict(
            medium_social_graph, cluster=cluster, enforce_memory=False
        )
        assert baseline.simulated_seconds > snaple.simulated_seconds

    def test_infinite_threshold_configuration_is_supported(self, small_social_graph):
        # The baseline has no truncation/sampling knobs; passing a custom k
        # and similarity is the whole configuration surface.
        from repro.snaple.similarity import dice

        result = BspBaselinePredictor(k=2, similarity=dice).predict(small_social_graph)
        assert all(len(targets) <= 2 for targets in result.predictions.values())
        assert math.isfinite(result.simulated_seconds)
