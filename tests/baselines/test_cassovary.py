"""Unit tests for the Cassovary-like in-memory graph."""

from __future__ import annotations

import random

import pytest

from repro.errors import GraphError, VertexNotFoundError
from repro.baselines.cassovary import InMemoryGraph
from repro.graph.digraph import DiGraph


class TestInMemoryGraph:
    def test_degrees_match_source_graph(self, small_social_graph):
        memory_graph = InMemoryGraph(small_social_graph)
        for vertex in range(small_social_graph.num_vertices):
            assert memory_graph.out_degree(vertex) == small_social_graph.out_degree(vertex)

    def test_neighbors_match_source_graph(self, small_social_graph):
        memory_graph = InMemoryGraph(small_social_graph)
        for vertex in range(0, 100, 9):
            assert sorted(memory_graph.out_neighbors(vertex).tolist()) == sorted(
                small_social_graph.out_neighbors(vertex).tolist()
            )

    def test_edge_and_vertex_counts(self, small_social_graph):
        memory_graph = InMemoryGraph(small_social_graph)
        assert memory_graph.num_vertices == small_social_graph.num_vertices
        assert memory_graph.num_edges == small_social_graph.num_edges

    def test_memory_footprint_is_linear_in_edges(self, small_social_graph):
        memory_graph = InMemoryGraph(small_social_graph)
        expected = 8 * (small_social_graph.num_vertices + 1
                        + small_social_graph.num_edges)
        assert memory_graph.memory_bytes() == expected

    def test_vertex_out_of_range_raises(self, triangle_graph):
        memory_graph = InMemoryGraph(triangle_graph)
        with pytest.raises(VertexNotFoundError):
            memory_graph.out_degree(10)


class TestRandomWalks:
    def test_walk_length_bounded_by_depth(self, small_social_graph):
        memory_graph = InMemoryGraph(small_social_graph)
        rng = random.Random(0)
        for _ in range(20):
            walk = memory_graph.random_walk(0, 4, rng)
            assert len(walk) <= 4

    def test_walk_follows_edges(self, small_social_graph):
        memory_graph = InMemoryGraph(small_social_graph)
        rng = random.Random(1)
        walk = memory_graph.random_walk(0, 5, rng)
        current = 0
        for vertex in walk:
            assert vertex in memory_graph.out_neighbors(current).tolist()
            current = vertex

    def test_walk_stops_at_sink(self):
        graph = DiGraph(3, [0, 1], [1, 2])  # 2 is a sink
        memory_graph = InMemoryGraph(graph)
        walk = memory_graph.random_walk(0, 10, random.Random(0))
        assert walk == [1, 2]

    def test_negative_depth_rejected(self, triangle_graph):
        memory_graph = InMemoryGraph(triangle_graph)
        with pytest.raises(GraphError):
            memory_graph.random_walk(0, -1, random.Random(0))

    def test_random_neighbor_of_sink_is_none(self):
        graph = DiGraph(2, [0], [1])
        memory_graph = InMemoryGraph(graph)
        assert memory_graph.random_neighbor(1, random.Random(0)) is None

    def test_run_walks_counts_visits(self, small_social_graph):
        memory_graph = InMemoryGraph(small_social_graph)
        visits, stats = memory_graph.run_walks(0, 50, 3, random.Random(2))
        assert stats.walks == 50
        assert stats.steps_taken == sum(
            count for count in visits.values()
        ) or stats.steps_taken >= sum(visits.values()) - stats.dead_ends
        assert stats.mean_length <= 3
        assert all(count > 0 for count in visits.values())

    def test_walk_stats_mean_length_empty(self):
        from repro.baselines.cassovary import WalkStats

        assert WalkStats(walks=0, steps_taken=0, dead_ends=0).mean_length == 0.0
