"""Unit tests for the naive 2-hop BASELINE on GAS."""

from __future__ import annotations

import pytest

from repro.errors import ResourceExhaustedError
from repro.gas.cluster import TYPE_I, TYPE_II, ClusterConfig, cluster_of
from repro.baselines.gas_baseline import GasBaselinePredictor
from repro.graph.digraph import DiGraph
from repro.snaple.config import SnapleConfig
from repro.snaple.predictor import SnapleLinkPredictor


class TestBaselineCorrectness:
    def test_scores_all_two_hop_candidates(self, small_social_graph):
        result = GasBaselinePredictor(k=5).predict_gas(
            small_social_graph, enforce_memory=False
        )
        for vertex in range(0, 50, 7):
            expected = small_social_graph.two_hop_neighbors(vertex)
            assert set(result.scores[vertex]) == expected

    def test_scores_are_jaccard(self):
        # 0 -> {1, 2}; 1 -> {3}; 2 -> {3}; 3 -> {1, 2}.
        # Candidate 3 of vertex 0: jaccard(Γ(0)={1,2}, Γ(3)={1,2}) = 1.
        graph = DiGraph(4, [0, 0, 1, 2, 3, 3], [1, 2, 3, 3, 1, 2])
        result = GasBaselinePredictor().predict_gas(graph, enforce_memory=False)
        assert result.scores[0][3] == pytest.approx(1.0)

    def test_predictions_exclude_direct_neighbors(self, small_social_graph):
        result = GasBaselinePredictor().predict_gas(
            small_social_graph, enforce_memory=False
        )
        for vertex, targets in result.predictions.items():
            direct = set(small_social_graph.out_neighbors(vertex).tolist())
            assert not set(targets) & direct

    def test_predictions_bounded_by_k(self, small_social_graph):
        result = GasBaselinePredictor(k=3).predict_gas(
            small_social_graph, enforce_memory=False
        )
        assert all(len(targets) <= 3 for targets in result.predictions.values())

    def test_predicted_edges_helper(self, small_social_graph):
        result = GasBaselinePredictor().predict_gas(
            small_social_graph, enforce_memory=False
        )
        assert all(len(edge) == 2 for edge in result.predicted_edges())

    def test_vertex_restriction(self, small_social_graph):
        result = GasBaselinePredictor().predict_gas(
            small_social_graph, vertices=[1, 2], enforce_memory=False
        )
        assert set(result.predictions) == {1, 2}


class TestBaselineCost:
    def test_baseline_moves_more_data_than_snaple(self, medium_social_graph):
        cluster = cluster_of(TYPE_I, 8)
        baseline = GasBaselinePredictor().predict_gas(
            medium_social_graph, cluster=cluster, enforce_memory=False
        )
        snaple = SnapleLinkPredictor(SnapleConfig(k_local=20)).predict(
            medium_social_graph, backend="gas", cluster=cluster,
            enforce_memory=False
        )
        assert (
            baseline.gas_result.metrics.total_network_bytes
            > snaple.native.metrics.total_network_bytes
        )

    def test_baseline_uses_more_memory_than_snaple(self, medium_social_graph):
        cluster = cluster_of(TYPE_II, 4)
        baseline = GasBaselinePredictor().predict_gas(
            medium_social_graph, cluster=cluster, enforce_memory=False
        )
        snaple = SnapleLinkPredictor(SnapleConfig(k_local=20)).predict(
            medium_social_graph, backend="gas", cluster=cluster,
            enforce_memory=False
        )
        assert (
            baseline.gas_result.metrics.peak_machine_memory_bytes
            > snaple.native.metrics.peak_machine_memory_bytes
        )

    def test_baseline_slower_than_snaple_in_simulated_time(self, medium_social_graph):
        cluster = cluster_of(TYPE_II, 4)
        baseline = GasBaselinePredictor().predict_gas(
            medium_social_graph, cluster=cluster, enforce_memory=False
        )
        snaple = SnapleLinkPredictor(SnapleConfig(k_local=20)).predict(
            medium_social_graph, backend="gas", cluster=cluster,
            enforce_memory=False
        )
        assert baseline.simulated_seconds > snaple.simulated_seconds

    def test_baseline_exhausts_memory_on_constrained_cluster(self, medium_social_graph):
        # The paper reports BASELINE failing on the largest graphs because it
        # replicates whole neighborhoods; a memory-constrained simulated
        # cluster reproduces that failure while SNAPLE still completes.
        constrained = ClusterConfig(machine=TYPE_II, num_machines=4,
                                    memory_scale=3.0e-6)
        with pytest.raises(ResourceExhaustedError):
            GasBaselinePredictor().predict_gas(
                medium_social_graph, cluster=constrained, enforce_memory=True
            )
        snaple = SnapleLinkPredictor(SnapleConfig(k_local=20)).predict(
            medium_social_graph, backend="gas", cluster=constrained,
            enforce_memory=True
        )
        assert snaple.predictions
