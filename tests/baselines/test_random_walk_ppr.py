"""Unit tests for the random-walk PPR predictor (Cassovary baseline)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.baselines.random_walk_ppr import RandomWalkConfig, RandomWalkPPRPredictor


class TestConfig:
    def test_defaults(self):
        config = RandomWalkConfig()
        assert config.num_walks == 100
        assert config.depth == 3
        assert config.k == 5

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RandomWalkConfig(num_walks=0)
        with pytest.raises(ConfigurationError):
            RandomWalkConfig(depth=0)
        with pytest.raises(ConfigurationError):
            RandomWalkConfig(k=0)

    def test_describe(self):
        assert RandomWalkConfig(num_walks=10, depth=4).describe() == "PPR w=10 d=4 k=5"


class TestPrediction:
    def test_predictions_for_every_vertex(self, small_social_graph):
        result = RandomWalkPPRPredictor(RandomWalkConfig(num_walks=20)).predict(
            small_social_graph
        )
        assert set(result.predictions) == set(range(small_social_graph.num_vertices))

    def test_predictions_exclude_direct_neighbors_and_self(self, small_social_graph):
        result = RandomWalkPPRPredictor(RandomWalkConfig(num_walks=20)).predict(
            small_social_graph
        )
        for vertex, targets in result.predictions.items():
            direct = set(small_social_graph.out_neighbors(vertex).tolist())
            assert vertex not in targets
            assert not set(targets) & direct

    def test_predictions_bounded_by_k(self, small_social_graph):
        result = RandomWalkPPRPredictor(RandomWalkConfig(num_walks=20, k=2)).predict(
            small_social_graph
        )
        assert all(len(targets) <= 2 for targets in result.predictions.values())

    def test_deterministic_given_seed(self, small_social_graph):
        config = RandomWalkConfig(num_walks=15, seed=9)
        first = RandomWalkPPRPredictor(config).predict(small_social_graph)
        second = RandomWalkPPRPredictor(config).predict(small_social_graph)
        assert first.predictions == second.predictions

    def test_more_walks_take_more_steps(self, small_social_graph):
        few = RandomWalkPPRPredictor(RandomWalkConfig(num_walks=10)).predict(
            small_social_graph
        )
        many = RandomWalkPPRPredictor(RandomWalkConfig(num_walks=100)).predict(
            small_social_graph
        )
        assert many.total_walk_steps > few.total_walk_steps

    def test_vertex_restriction(self, small_social_graph):
        result = RandomWalkPPRPredictor(RandomWalkConfig(num_walks=10)).predict(
            small_social_graph, vertices=[3, 4]
        )
        assert set(result.predictions) == {3, 4}

    def test_ranked_by_visit_count(self, small_social_graph):
        result = RandomWalkPPRPredictor(RandomWalkConfig(num_walks=50)).predict(
            small_social_graph
        )
        for vertex, targets in result.predictions.items():
            counts = [result.visit_counts[vertex][z] for z in targets]
            assert counts == sorted(counts, reverse=True)

    def test_predicted_edges_helper(self, small_social_graph):
        result = RandomWalkPPRPredictor(RandomWalkConfig(num_walks=10)).predict(
            small_social_graph
        )
        assert all(len(edge) == 2 for edge in result.predicted_edges())
