"""Unit tests for the classic topological predictors."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.baselines.topological import (
    TOPOLOGICAL_SCORES,
    TopologicalPredictor,
    adamic_adar_score,
    common_neighbors_score,
    jaccard_score,
    preferential_attachment_score,
    resource_allocation_score,
)
from repro.graph.digraph import DiGraph


@pytest.fixture
def diamond_graph() -> DiGraph:
    """0 -> {1, 2}; 1 -> {3}; 2 -> {3}; 3 -> {1, 2}: a 4-cycle diamond."""
    return DiGraph(4, [0, 0, 1, 2, 3, 3], [1, 2, 3, 3, 1, 2])


class TestScores:
    def test_common_neighbors(self, diamond_graph):
        assert common_neighbors_score(diamond_graph, 0, 3) == 2.0

    def test_jaccard(self, diamond_graph):
        assert jaccard_score(diamond_graph, 0, 3) == pytest.approx(1.0)

    def test_jaccard_disjoint(self, diamond_graph):
        # Γ(0) = {1, 2} and Γ(1) = {3} share nothing.
        assert jaccard_score(diamond_graph, 0, 1) == 0.0

    def test_adamic_adar_positive_for_shared_neighbors(self):
        # Common neighbors of 0 and 4 are {1, 2}, each with out-degree 2, so
        # both contribute 1/log(2) to the Adamic–Adar score.
        graph = DiGraph(5, [0, 0, 4, 4, 1, 1, 2, 2], [1, 2, 1, 2, 0, 4, 0, 4])
        assert adamic_adar_score(graph, 0, 4) == pytest.approx(2 / 0.6931, rel=1e-3)

    def test_adamic_adar_skips_degree_one_commons(self):
        graph = DiGraph(3, [0, 2, 1], [1, 1, 0])
        # Common neighborhood of 0 and 2 is {1}, whose out-degree is 1, so
        # 1/log(1) is undefined and must be skipped.
        assert adamic_adar_score(graph, 0, 2) == 0.0

    def test_preferential_attachment(self, diamond_graph):
        assert preferential_attachment_score(diamond_graph, 0, 3) == 4.0

    def test_resource_allocation(self, diamond_graph):
        assert resource_allocation_score(diamond_graph, 0, 3) == pytest.approx(2.0)

    def test_registry_complete(self):
        assert set(TOPOLOGICAL_SCORES) == {
            "common_neighbors", "jaccard", "adamic_adar",
            "preferential_attachment", "resource_allocation",
        }


class TestPredictor:
    def test_candidates_are_two_hop(self, small_social_graph):
        result = TopologicalPredictor("jaccard", k=5).predict(
            small_social_graph, vertices=list(range(20))
        )
        for vertex in range(20):
            assert set(result.scores[vertex]) == small_social_graph.two_hop_neighbors(vertex)

    def test_k_bound(self, small_social_graph):
        result = TopologicalPredictor("common_neighbors", k=2).predict(
            small_social_graph, vertices=list(range(10))
        )
        assert all(len(targets) <= 2 for targets in result.predictions.values())

    def test_unknown_score_rejected(self):
        with pytest.raises(ConfigurationError):
            TopologicalPredictor("pagerank")

    def test_invalid_k_rejected(self):
        with pytest.raises(ConfigurationError):
            TopologicalPredictor("jaccard", k=0)

    def test_properties(self):
        predictor = TopologicalPredictor("adamic_adar", k=7)
        assert predictor.score_name == "adamic_adar"
        assert predictor.k == 7

    def test_predicted_edges_helper(self, small_social_graph):
        result = TopologicalPredictor("jaccard").predict(
            small_social_graph, vertices=[0, 1]
        )
        for u, z in result.predicted_edges():
            assert u in (0, 1)
            assert isinstance(z, int)
