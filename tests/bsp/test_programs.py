"""Tests for the classic Pregel programs shipped with the BSP substrate."""

from __future__ import annotations

import pytest

from repro.bsp.engine import BspEngine
from repro.bsp.programs import (
    ConnectedComponentsProgram,
    PageRankProgram,
    ShortestPathsProgram,
)
from repro.gas.cluster import TYPE_II, cluster_of
from repro.graph.digraph import DiGraph
from repro.graph.traversal import bfs_distances, weakly_connected_components


class TestPageRank:
    def test_rank_mass_is_conserved(self, small_social_graph):
        engine = BspEngine(graph=small_social_graph, cluster=cluster_of(TYPE_II, 4))
        result = engine.run(PageRankProgram(num_iterations=8))
        total = sum(result.state_of(u)["rank"] for u in small_social_graph.vertices())
        # Symmetrized graphs have no dangling vertices, so the rank mass stays 1.
        assert total == pytest.approx(1.0, abs=1e-6)

    def test_aggregator_reports_total_rank(self, small_social_graph):
        engine = BspEngine(graph=small_social_graph)
        result = engine.run(PageRankProgram(num_iterations=5))
        assert result.aggregated_values["total_rank"] == pytest.approx(1.0, abs=1e-6)

    def test_hub_outranks_leaves_on_a_star(self, star_graph):
        result = BspEngine(graph=star_graph).run(PageRankProgram(num_iterations=15))
        hub_rank = result.state_of(0)["rank"]
        leaf_ranks = [result.state_of(u)["rank"] for u in range(1, 11)]
        assert hub_rank > max(leaf_ranks)
        assert leaf_ranks == pytest.approx([leaf_ranks[0]] * 10)

    def test_distribution_does_not_change_ranks(self, small_social_graph):
        single = BspEngine(graph=small_social_graph, cluster=cluster_of(TYPE_II, 1))
        distributed = BspEngine(graph=small_social_graph, cluster=cluster_of(TYPE_II, 8))
        ranks_single = single.run(PageRankProgram(num_iterations=6))
        ranks_distributed = distributed.run(PageRankProgram(num_iterations=6))
        for u in small_social_graph.vertices():
            assert ranks_single.state_of(u)["rank"] == pytest.approx(
                ranks_distributed.state_of(u)["rank"]
            )


class TestConnectedComponents:
    def test_matches_traversal_components_on_symmetric_graph(self, random_graph):
        graph = random_graph(200, 3, 0.4, seed=5)
        expected = weakly_connected_components(graph)
        expected_label = {}
        for component in expected:
            label = min(component)
            for vertex in component:
                expected_label[vertex] = label
        result = BspEngine(graph=graph, cluster=cluster_of(TYPE_II, 4)).run(
            ConnectedComponentsProgram()
        )
        for u in graph.vertices():
            assert result.state_of(u)["component"] == expected_label[u]

    def test_two_separate_triangles(self):
        graph = DiGraph(
            6,
            [0, 1, 2, 1, 2, 0, 3, 4, 5, 4, 5, 3],
            [1, 2, 0, 0, 1, 2, 4, 5, 3, 3, 4, 5],
        )
        result = BspEngine(graph=graph).run(ConnectedComponentsProgram())
        assert {result.state_of(u)["component"] for u in range(3)} == {0}
        assert {result.state_of(u)["component"] for u in range(3, 6)} == {3}


class TestShortestPaths:
    def test_matches_bfs_distances(self, random_graph):
        graph = random_graph(150, 3, 0.4, seed=9)
        source = 0
        expected = bfs_distances(graph, source)
        result = BspEngine(graph=graph, cluster=cluster_of(TYPE_II, 4)).run(
            ShortestPathsProgram(source)
        )
        for u in graph.vertices():
            distance = result.state_of(u)["distance"]
            if u in expected:
                assert distance == pytest.approx(float(expected[u]))
            else:
                assert distance == float("inf")

    def test_unreachable_vertices_stay_infinite(self):
        graph = DiGraph(3, [0], [1])
        result = BspEngine(graph=graph).run(ShortestPathsProgram(0))
        assert result.state_of(0)["distance"] == 0.0
        assert result.state_of(1)["distance"] == 1.0
        assert result.state_of(2)["distance"] == float("inf")
