"""Unit tests for the Pregel vertex-program API (context, combiners, defaults)."""

from __future__ import annotations

from typing import Any

import pytest

from repro.bsp.vertex import (
    BspVertexProgram,
    ComputeContext,
    MaxCombiner,
    MinCombiner,
    SumCombiner,
)


def _make_context(**overrides) -> tuple[ComputeContext, dict]:
    """Build a ComputeContext wired to recording callbacks."""
    recorded: dict[str, Any] = {"sent": [], "halted": [], "aggregated": []}

    def send(source: int, target: int, value: Any) -> None:
        recorded["sent"].append((source, target, value))

    def halt(vertex: int) -> None:
        recorded["halted"].append(vertex)

    def aggregate(name: str, value: Any) -> None:
        recorded["aggregated"].append((name, value))

    defaults = dict(
        superstep=2,
        num_vertices=10,
        num_edges=20,
        vertex=3,
        out_neighbors=[4, 5, 6],
        send=send,
        halt=halt,
        aggregate=aggregate,
        aggregated_values={"total": 7.5},
    )
    defaults.update(overrides)
    return ComputeContext(**defaults), recorded


class TestComputeContext:
    def test_exposes_topology(self):
        context, _ = _make_context()
        assert context.vertex == 3
        assert context.out_neighbors() == [4, 5, 6]
        assert context.out_degree() == 3
        assert context.num_vertices == 10
        assert context.num_edges == 20
        assert context.superstep == 2

    def test_send_message_records_sender_and_counts(self):
        context, recorded = _make_context()
        context.send_message(7, "hello")
        assert recorded["sent"] == [(3, 7, "hello")]
        assert context.messages_sent == 1

    def test_send_to_all_neighbors_sends_one_message_per_edge(self):
        context, recorded = _make_context()
        context.send_message_to_all_neighbors(1.5)
        assert recorded["sent"] == [(3, 4, 1.5), (3, 5, 1.5), (3, 6, 1.5)]
        assert context.messages_sent == 3

    def test_vote_to_halt_reports_the_running_vertex(self):
        context, recorded = _make_context()
        context.vote_to_halt()
        assert recorded["halted"] == [3]

    def test_aggregate_and_aggregated(self):
        context, recorded = _make_context()
        context.aggregate("total", 2.0)
        assert recorded["aggregated"] == [("total", 2.0)]
        assert context.aggregated("total") == 7.5
        assert context.aggregated("missing", default=0.0) == 0.0


class TestCombiners:
    def test_sum_combiner(self):
        assert SumCombiner().combine(2, 3) == 5

    def test_min_combiner(self):
        assert MinCombiner().combine(2, 3) == 2

    def test_max_combiner(self):
        assert MaxCombiner().combine(2, 3) == 3

    @pytest.mark.parametrize("combiner", [SumCombiner(), MinCombiner(), MaxCombiner()])
    def test_combiners_are_commutative(self, combiner):
        assert combiner.combine(1.25, 4.5) == combiner.combine(4.5, 1.25)


class TestProgramDefaults:
    class MinimalProgram(BspVertexProgram):
        name = "minimal"

        def compute(self, state, messages, context):
            context.vote_to_halt()

    def test_default_initial_state_is_empty(self):
        assert self.MinimalProgram().initial_state(0) == {}

    def test_default_aggregators_are_empty(self):
        assert self.MinimalProgram().aggregators() == {}

    def test_default_compute_cost_counts_messages(self):
        program = self.MinimalProgram()
        assert program.compute_cost({}, 0) == 1
        assert program.compute_cost({}, 5) == 6

    def test_default_message_payload_matches_gas_estimator(self):
        from repro.gas.vertex_program import payload_size_bytes

        program = self.MinimalProgram()
        payload = {"a": [1, 2, 3], "b": 4.0}
        assert program.message_payload_bytes(payload) == payload_size_bytes(payload)

    def test_default_combiner_is_none(self):
        assert self.MinimalProgram().combiner is None
