"""Tests for the edge-cut vertex partitioning of the BSP substrate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bsp.partition import (
    BlockVertexPartitioner,
    HashVertexPartitioner,
    VertexPartition,
    partition_vertices,
)
from repro.errors import PartitionError
from repro.graph.digraph import DiGraph


class TestPartitionVertices:
    def test_every_vertex_is_placed(self, small_social_graph):
        partition = partition_vertices(small_social_graph, 4, seed=1)
        assert partition.num_vertices == small_social_graph.num_vertices
        assert partition.vertex_machine.min() >= 0
        assert partition.vertex_machine.max() < 4

    def test_single_machine_places_everything_on_machine_zero(self, triangle_graph):
        partition = partition_vertices(triangle_graph, 1)
        assert set(partition.vertex_machine.tolist()) == {0}

    def test_rejects_non_positive_machine_count(self, triangle_graph):
        with pytest.raises(PartitionError):
            partition_vertices(triangle_graph, 0)

    def test_rejects_wrong_assignment_shape(self, triangle_graph):
        class BrokenPartitioner(HashVertexPartitioner):
            def assign_vertices(self, graph, num_machines, *, seed):
                return np.zeros(graph.num_vertices + 1, dtype=np.int64)

        with pytest.raises(PartitionError):
            partition_vertices(triangle_graph, 2, partitioner=BrokenPartitioner())

    def test_rejects_out_of_range_machine(self, triangle_graph):
        class BrokenPartitioner(HashVertexPartitioner):
            def assign_vertices(self, graph, num_machines, *, seed):
                return np.full(graph.num_vertices, num_machines, dtype=np.int64)

        with pytest.raises(PartitionError):
            partition_vertices(triangle_graph, 2, partitioner=BrokenPartitioner())

    def test_empty_graph(self):
        graph = DiGraph(0, [], [])
        partition = partition_vertices(graph, 3)
        assert partition.num_vertices == 0
        assert partition.cut_edges(graph) == 0
        assert partition.cut_fraction(graph) == 0.0


class TestHashVertexPartitioner:
    def test_deterministic_for_a_seed(self, medium_social_graph):
        first = partition_vertices(medium_social_graph, 8, seed=3)
        second = partition_vertices(medium_social_graph, 8, seed=3)
        assert np.array_equal(first.vertex_machine, second.vertex_machine)

    def test_different_seeds_give_different_placements(self, medium_social_graph):
        first = partition_vertices(medium_social_graph, 8, seed=3)
        second = partition_vertices(medium_social_graph, 8, seed=4)
        assert not np.array_equal(first.vertex_machine, second.vertex_machine)

    def test_roughly_balanced_vertex_counts(self, medium_social_graph):
        partition = partition_vertices(medium_social_graph, 4, seed=0)
        counts = partition.vertices_per_machine()
        assert counts.min() > 0
        assert counts.max() / counts.mean() < 1.3


class TestBlockVertexPartitioner:
    def test_contiguous_ranges(self):
        graph = DiGraph(10, [0, 5], [5, 9])
        partition = partition_vertices(
            graph, 2, partitioner=BlockVertexPartitioner()
        )
        assert partition.vertex_machine[:5].tolist() == [0] * 5
        assert partition.vertex_machine[5:].tolist() == [1] * 5

    def test_covers_all_machines_when_possible(self, small_social_graph):
        partition = partition_vertices(
            small_social_graph, 3, partitioner=BlockVertexPartitioner()
        )
        assert set(partition.vertex_machine.tolist()) == {0, 1, 2}


class TestVertexPartitionMetrics:
    def test_cut_edges_counts_cross_machine_edges(self):
        graph = DiGraph(4, [0, 1, 2, 3], [1, 2, 3, 0])
        partition = VertexPartition(
            num_machines=2,
            vertex_machine=np.array([0, 0, 1, 1], dtype=np.int64),
        )
        # Edges 1->2 and 3->0 cross machines; 0->1 and 2->3 are local.
        assert partition.cut_edges(graph) == 2
        assert partition.cut_fraction(graph) == pytest.approx(0.5)

    def test_single_machine_has_no_cut_edges(self, small_social_graph):
        partition = partition_vertices(small_social_graph, 1)
        assert partition.cut_edges(small_social_graph) == 0

    def test_more_machines_cut_more_edges(self, medium_social_graph):
        few = partition_vertices(medium_social_graph, 2, seed=5)
        many = partition_vertices(medium_social_graph, 16, seed=5)
        assert many.cut_edges(medium_social_graph) > few.cut_edges(medium_social_graph)

    def test_edges_per_machine_sums_to_total(self, small_social_graph):
        partition = partition_vertices(small_social_graph, 4, seed=2)
        assert int(partition.edges_per_machine(small_social_graph).sum()) == (
            small_social_graph.num_edges
        )

    def test_load_imbalance_is_at_least_one(self, small_social_graph):
        partition = partition_vertices(small_social_graph, 4, seed=2)
        assert partition.load_imbalance(small_social_graph) >= 1.0

    def test_block_placement_keeps_generator_locality(self, random_graph):
        # Power-law-cluster graphs attach new vertices to earlier ones, so a
        # block placement cuts fewer edges than a hash placement.
        graph = random_graph(400, 4, 0.5, seed=13)
        hashed = partition_vertices(graph, 4, seed=1)
        blocked = partition_vertices(
            graph, 4, partitioner=BlockVertexPartitioner(), seed=1
        )
        assert blocked.cut_edges(graph) < hashed.cut_edges(graph)
