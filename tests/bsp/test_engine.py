"""Tests for the superstep BSP engine and its accounting."""

from __future__ import annotations

from typing import Any

import pytest

from repro.bsp.engine import BspEngine
from repro.bsp.partition import BlockVertexPartitioner
from repro.bsp.programs import OutDegreeProgram, PageRankProgram
from repro.bsp.vertex import BspVertexProgram, ComputeContext, SumCombiner
from repro.errors import EngineError, ResourceExhaustedError
from repro.gas.cluster import TYPE_I, TYPE_II, ClusterConfig, cluster_of
from repro.graph.digraph import DiGraph


class EchoDegreeProgram(BspVertexProgram):
    """Superstep 0: send 1 along every out-edge; superstep 1: count receipts."""

    name = "echo-degree"
    max_supersteps = 2

    def initial_state(self, vertex: int) -> dict[str, Any]:
        return {"in_degree": 0}

    def compute(self, state: dict[str, Any], messages: list[Any],
                context: ComputeContext) -> None:
        if context.superstep == 0:
            context.send_message_to_all_neighbors(1)
            context.vote_to_halt()
        else:
            state["in_degree"] = sum(messages)
            context.vote_to_halt()


class TestBspEngineBasics:
    def test_out_degree_program_matches_graph(self, small_social_graph):
        engine = BspEngine(graph=small_social_graph)
        result = engine.run(OutDegreeProgram())
        for u in small_social_graph.vertices():
            assert result.state_of(u)["degree"] == small_social_graph.out_degree(u)

    def test_messages_compute_in_degrees(self, small_social_graph):
        engine = BspEngine(graph=small_social_graph, cluster=cluster_of(TYPE_II, 4))
        result = engine.run(EchoDegreeProgram())
        for u in small_social_graph.vertices():
            assert result.state_of(u)["in_degree"] == small_social_graph.in_degree(u)

    def test_run_stops_when_all_vertices_halt(self, triangle_graph):
        engine = BspEngine(graph=triangle_graph)
        result = engine.run(OutDegreeProgram())
        assert result.supersteps == 1

    def test_max_supersteps_bounds_non_halting_programs(self, triangle_graph):
        class NeverHaltProgram(BspVertexProgram):
            name = "never-halt"
            max_supersteps = 5

            def compute(self, state, messages, context):
                context.send_message_to_all_neighbors(1)

        engine = BspEngine(graph=triangle_graph)
        result = engine.run(NeverHaltProgram())
        assert result.supersteps == 5

    def test_rejects_zero_max_supersteps(self, triangle_graph):
        program = OutDegreeProgram()
        program.max_supersteps = 0
        engine = BspEngine(graph=triangle_graph)
        with pytest.raises(EngineError):
            engine.run(program)

    def test_message_to_unknown_vertex_is_rejected(self, triangle_graph):
        class BadTargetProgram(BspVertexProgram):
            name = "bad-target"
            max_supersteps = 1

            def compute(self, state, messages, context):
                context.send_message(999, 1)

        engine = BspEngine(graph=triangle_graph)
        with pytest.raises(EngineError):
            engine.run(BadTargetProgram())

    def test_restricting_initial_vertices(self, star_graph):
        class MarkProgram(BspVertexProgram):
            name = "mark"
            max_supersteps = 1

            def initial_state(self, vertex):
                return {"marked": False}

            def compute(self, state, messages, context):
                state["marked"] = True
                context.vote_to_halt()

        engine = BspEngine(graph=star_graph)
        result = engine.run(MarkProgram(), vertices=[0, 1])
        marked = [u for u in star_graph.vertices() if result.state_of(u)["marked"]]
        assert marked == [0, 1]

    def test_message_reactivates_halted_vertex(self):
        # 0 -> 1: vertex 1 halts at superstep 0 but must wake up when the
        # message from 0 arrives at superstep 1.
        graph = DiGraph(2, [0], [1])

        class WakeProgram(BspVertexProgram):
            name = "wake"
            max_supersteps = 3

            def initial_state(self, vertex):
                return {"woken": 0}

            def compute(self, state, messages, context):
                if context.superstep == 0 and context.vertex == 0:
                    context.send_message(1, "wake-up")
                if messages:
                    state["woken"] += len(messages)
                context.vote_to_halt()

        result = BspEngine(graph=graph).run(WakeProgram())
        assert result.state_of(1)["woken"] == 1


class TestBspEngineAccounting:
    def test_local_messages_are_free_remote_messages_are_charged(self):
        # Chain 0 -> 1 -> 2 -> 3 split in half: with the block placement the
        # only remote edge is 1 -> 2, so exactly one message crosses.
        graph = DiGraph(4, [0, 1, 2], [1, 2, 3])
        cluster = cluster_of(TYPE_II, 2)
        engine = BspEngine(
            graph=graph, cluster=cluster, partitioner=BlockVertexPartitioner()
        )
        result = engine.run(EchoDegreeProgram())
        step0 = result.metrics.steps[0]
        per_message = 8  # one integer payload
        assert sum(step0.network_bytes_per_machine) == 2 * per_message

    def test_single_machine_run_has_no_network_traffic(self, small_social_graph):
        engine = BspEngine(graph=small_social_graph, cluster=cluster_of(TYPE_II, 1))
        result = engine.run(EchoDegreeProgram())
        assert result.metrics.total_network_bytes == 0

    def test_combiner_reduces_network_traffic(self, medium_social_graph):
        cluster = cluster_of(TYPE_I, 4)

        class FanInProgram(BspVertexProgram):
            """Every vertex sends 1.0 to vertex 0 (heavy fan-in)."""

            name = "fan-in"
            max_supersteps = 2

            def compute(self, state, messages, context):
                if context.superstep == 0:
                    context.send_message(0, 1.0)
                else:
                    state["total"] = sum(messages)
                context.vote_to_halt()

        without = FanInProgram()
        with_combiner = FanInProgram()
        with_combiner.combiner = SumCombiner()

        plain = BspEngine(graph=medium_social_graph, cluster=cluster, seed=1).run(without)
        combined = BspEngine(graph=medium_social_graph, cluster=cluster, seed=1).run(
            with_combiner
        )
        assert combined.metrics.total_network_bytes < plain.metrics.total_network_bytes
        # The combiner must not change the computed result.
        assert combined.state_of(0)["total"] == plain.state_of(0)["total"]

    def test_simulated_time_includes_the_per_superstep_barrier(self, triangle_graph):
        # The cost model charges one barrier per superstep, which is the
        # floor of the simulated time for a tiny graph.
        result = BspEngine(graph=triangle_graph, cluster=cluster_of(TYPE_II, 4)).run(
            EchoDegreeProgram()
        )
        barrier = TYPE_II.barrier_latency_seconds
        assert result.simulated_seconds >= result.supersteps * barrier

    def test_memory_enforcement_raises_on_tiny_capacity(self, medium_social_graph):
        tiny_cluster = ClusterConfig(
            machine=TYPE_I, num_machines=2, memory_scale=1e-9
        )
        engine = BspEngine(graph=medium_social_graph, cluster=tiny_cluster)
        with pytest.raises(ResourceExhaustedError):
            engine.run(PageRankProgram(num_iterations=2))

    def test_memory_enforcement_can_be_disabled(self, medium_social_graph):
        tiny_cluster = ClusterConfig(
            machine=TYPE_I, num_machines=2, memory_scale=1e-9
        )
        engine = BspEngine(
            graph=medium_social_graph, cluster=tiny_cluster, enforce_memory=False
        )
        result = engine.run(PageRankProgram(num_iterations=2))
        assert result.metrics.peak_machine_memory_bytes > 0

    def test_wall_clock_and_simulated_times_are_recorded(self, small_social_graph):
        result = BspEngine(graph=small_social_graph).run(EchoDegreeProgram())
        assert result.wall_clock_seconds > 0
        assert result.simulated_seconds > 0
        assert len(result.metrics.steps) == result.supersteps

    def test_undeclared_aggregator_is_rejected(self, triangle_graph):
        class RogueAggregatorProgram(BspVertexProgram):
            name = "rogue"
            max_supersteps = 1

            def compute(self, state, messages, context):
                context.aggregate("undeclared", 1)

        with pytest.raises(EngineError):
            BspEngine(graph=triangle_graph).run(RogueAggregatorProgram())
