"""Unit tests for the vertex-cut partitioner."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import PartitionError
from repro.gas.partition import (
    GreedyVertexCut,
    Partitioner,
    RandomVertexCut,
    partition_graph,
)
from repro.graph.digraph import DiGraph


class TestPartitioning:
    def test_single_machine_everything_local(self, small_social_graph):
        partition = partition_graph(small_social_graph, 1)
        assert partition.replication_factor() == pytest.approx(1.0)
        assert partition.edges_per_machine().tolist() == [small_social_graph.num_edges]

    def test_every_edge_assigned_to_valid_machine(self, small_social_graph):
        partition = partition_graph(small_social_graph, 4, seed=1)
        assert partition.edge_machine.min() >= 0
        assert partition.edge_machine.max() < 4
        assert partition.edge_machine.size == small_social_graph.num_edges

    def test_master_is_a_replica(self, small_social_graph):
        partition = partition_graph(small_social_graph, 4, seed=1)
        for vertex in range(small_social_graph.num_vertices):
            assert int(partition.vertex_master[vertex]) in partition.machines_of(vertex)

    def test_replication_factor_grows_with_machines(self, medium_social_graph):
        two = partition_graph(medium_social_graph, 2, seed=0).replication_factor()
        eight = partition_graph(medium_social_graph, 8, seed=0).replication_factor()
        assert eight > two >= 1.0

    def test_isolated_vertex_gets_a_master(self):
        graph = DiGraph(5, [0], [1])
        partition = partition_graph(graph, 3, seed=0)
        for vertex in range(5):
            assert 0 <= partition.vertex_master[vertex] < 3
            assert partition.machines_of(vertex)

    def test_invalid_machine_count(self, small_social_graph):
        with pytest.raises(PartitionError):
            partition_graph(small_social_graph, 0)

    def test_load_imbalance_reasonable_for_random_cut(self, medium_social_graph):
        partition = partition_graph(medium_social_graph, 4, seed=2)
        assert 1.0 <= partition.load_imbalance() < 1.5

    def test_is_local_edge(self):
        graph = DiGraph(2, [0], [1])
        partition = partition_graph(graph, 1)
        assert partition.is_local_edge(0, 1, 0)


class TestGreedyVersusRandom:
    def test_greedy_reduces_replication(self, medium_social_graph):
        random_cut = partition_graph(
            medium_social_graph, 8, partitioner=RandomVertexCut(), seed=5
        )
        greedy_cut = partition_graph(
            medium_social_graph, 8, partitioner=GreedyVertexCut(), seed=5
        )
        assert greedy_cut.replication_factor() < random_cut.replication_factor()

    def test_greedy_uses_multiple_machines(self, medium_social_graph):
        # Oblivious greedy placement does not guarantee perfect spreading on a
        # connected graph, but it must use more than one machine.
        greedy_cut = partition_graph(
            medium_social_graph, 4, partitioner=GreedyVertexCut(), seed=5
        )
        assert len(set(np.unique(greedy_cut.edge_machine))) >= 2

    def test_custom_partitioner_shape_validated(self, small_social_graph):
        class BadShape(Partitioner):
            def assign_edges(self, graph, num_machines, *, seed):
                return np.zeros(3, dtype=np.int64)

        with pytest.raises(PartitionError):
            partition_graph(small_social_graph, 2, partitioner=BadShape())

    def test_custom_partitioner_range_validated(self, small_social_graph):
        class BadRange(Partitioner):
            def assign_edges(self, graph, num_machines, *, seed):
                return np.full(graph.num_edges, 99, dtype=np.int64)

        with pytest.raises(PartitionError):
            partition_graph(small_social_graph, 2, partitioner=BadRange())

    def test_deterministic_given_seed(self, small_social_graph):
        first = partition_graph(small_social_graph, 4, seed=9)
        second = partition_graph(small_social_graph, 4, seed=9)
        assert np.array_equal(first.edge_machine, second.edge_machine)
