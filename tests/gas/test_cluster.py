"""Unit tests for the cluster hardware model."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.gas.cluster import (
    SINGLE_MACHINE,
    TYPE_I,
    TYPE_II,
    ClusterConfig,
    MachineSpec,
    cluster_of,
)


class TestMachineSpec:
    def test_paper_core_counts(self):
        assert TYPE_I.cores == 8
        assert TYPE_II.cores == 20

    def test_paper_memory_ratio(self):
        # 32 GB vs 128 GB in the paper.
        assert TYPE_II.memory_bytes == 4 * TYPE_I.memory_bytes

    def test_paper_network_ratio(self):
        # 1 GbE vs 10 GbE in the paper.
        assert TYPE_II.network_bytes_per_second == pytest.approx(
            10 * TYPE_I.network_bytes_per_second
        )

    def test_single_machine_is_type_ii(self):
        assert SINGLE_MACHINE is TYPE_II

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MachineSpec("bad", 0, 1.0, 1, 1.0)
        with pytest.raises(ConfigurationError):
            MachineSpec("bad", 1, 0.0, 1, 1.0)
        with pytest.raises(ConfigurationError):
            MachineSpec("bad", 1, 1.0, 0, 1.0)
        with pytest.raises(ConfigurationError):
            MachineSpec("bad", 1, 1.0, 1, 0.0)


class TestClusterConfig:
    def test_total_cores(self):
        cluster = cluster_of(TYPE_I, 32)
        assert cluster.total_cores == 256  # the paper's largest deployment

    def test_type_ii_160_cores(self):
        assert cluster_of(TYPE_II, 8).total_cores == 160

    def test_default_name(self):
        assert cluster_of(TYPE_I, 4).name == "4xtype-I"

    def test_memory_scaling(self):
        cluster = ClusterConfig(machine=TYPE_I, num_machines=2, memory_scale=0.5)
        assert cluster.per_machine_memory_bytes == pytest.approx(
            TYPE_I.memory_bytes * 0.5
        )

    def test_is_distributed(self):
        assert not cluster_of(TYPE_II, 1).is_distributed
        assert cluster_of(TYPE_II, 2).is_distributed

    def test_describe_mentions_machine_count(self):
        description = cluster_of(TYPE_I, 3).describe()
        assert "3" in description
        assert "type-I" in description

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ClusterConfig(machine=TYPE_I, num_machines=0)
        with pytest.raises(ConfigurationError):
            ClusterConfig(machine=TYPE_I, num_machines=1, memory_scale=0)
