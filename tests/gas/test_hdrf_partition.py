"""Tests for the HDRF vertex-cut and the cross-partitioner orderings."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import PartitionError
from repro.gas.partition import (
    GreedyVertexCut,
    HdrfVertexCut,
    RandomVertexCut,
    partition_graph,
)


class TestHdrfVertexCut:
    def test_rejects_negative_balance_weight(self):
        with pytest.raises(PartitionError):
            HdrfVertexCut(balance_weight=-1.0)

    def test_every_edge_is_assigned_to_a_valid_machine(self, medium_social_graph):
        partition = partition_graph(
            medium_social_graph, 8, partitioner=HdrfVertexCut(), seed=1
        )
        assert partition.edge_machine.shape == (medium_social_graph.num_edges,)
        assert partition.edge_machine.min() >= 0
        assert partition.edge_machine.max() < 8

    def test_deterministic_for_a_seed(self, small_social_graph):
        first = partition_graph(
            small_social_graph, 4, partitioner=HdrfVertexCut(), seed=7
        )
        second = partition_graph(
            small_social_graph, 4, partitioner=HdrfVertexCut(), seed=7
        )
        assert np.array_equal(first.edge_machine, second.edge_machine)

    def test_default_balance_keeps_load_even(self, medium_social_graph):
        partition = partition_graph(
            medium_social_graph, 8, partitioner=HdrfVertexCut(), seed=1
        )
        assert partition.load_imbalance() < 1.3

    def test_single_machine_degenerates_gracefully(self, small_social_graph):
        partition = partition_graph(
            small_social_graph, 1, partitioner=HdrfVertexCut(), seed=1
        )
        assert partition.replication_factor() == pytest.approx(1.0)

    def test_low_balance_weight_trades_balance_for_replication(self, medium_social_graph):
        focused = partition_graph(
            medium_social_graph, 8, partitioner=HdrfVertexCut(balance_weight=0.5), seed=1
        )
        balanced = partition_graph(
            medium_social_graph, 8, partitioner=HdrfVertexCut(balance_weight=4.0), seed=1
        )
        assert focused.replication_factor() < balanced.replication_factor()
        assert focused.load_imbalance() > balanced.load_imbalance()


class TestPartitionerOrdering:
    """The replication-factor ordering the partitioning ablation relies on."""

    @pytest.fixture(scope="class")
    def clustered_graph(self, random_graph):
        return random_graph(600, 4, 0.5, seed=3)

    def test_hdrf_replicates_less_than_greedy_and_random(self, clustered_graph):
        factors = {}
        for name, partitioner in (
            ("random", RandomVertexCut()),
            ("greedy", GreedyVertexCut()),
            ("hdrf", HdrfVertexCut()),
        ):
            partition = partition_graph(
                clustered_graph, 8, partitioner=partitioner, seed=1
            )
            factors[name] = partition.replication_factor()
        assert factors["hdrf"] < factors["greedy"] < factors["random"]

    def test_all_partitioners_cover_every_machine(self, clustered_graph):
        for partitioner in (RandomVertexCut(), GreedyVertexCut(), HdrfVertexCut()):
            partition = partition_graph(
                clustered_graph, 4, partitioner=partitioner, seed=2
            )
            assert set(np.unique(partition.edge_machine).tolist()) == {0, 1, 2, 3}

    def test_replication_factor_never_below_one(self, clustered_graph):
        for partitioner in (RandomVertexCut(), GreedyVertexCut(), HdrfVertexCut()):
            partition = partition_graph(
                clustered_graph, 8, partitioner=partitioner, seed=2
            )
            assert partition.replication_factor() >= 1.0
