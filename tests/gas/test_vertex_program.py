"""Unit tests for the vertex-program API helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.gas.vertex_program import EdgeDirection, VertexProgram, payload_size_bytes


class TestPayloadSize:
    def test_none_is_free(self):
        assert payload_size_bytes(None) == 0

    def test_scalars(self):
        assert payload_size_bytes(42) == 8
        assert payload_size_bytes(3.14) == 8
        assert payload_size_bytes(True) == 1

    def test_strings_and_bytes(self):
        assert payload_size_bytes("hello") == 5
        assert payload_size_bytes(b"12345678") == 8

    def test_containers_sum_elements(self):
        assert payload_size_bytes([1, 2, 3]) == 24
        assert payload_size_bytes((1.0, 2.0)) == 16
        assert payload_size_bytes({1, 2}) == 16

    def test_dict_counts_keys_and_values(self):
        assert payload_size_bytes({1: 2.0, 3: 4.0}) == 32

    def test_nested_structures(self):
        assert payload_size_bytes({1: [1, 2], 2: [3]}) == 8 + 16 + 8 + 8

    def test_numpy_arrays_use_nbytes(self):
        array = np.zeros(10, dtype=np.int64)
        assert payload_size_bytes(array) == 80

    def test_neighborhood_payload_dwarfs_scalar_payload(self):
        # The key asymmetry behind the paper's results: a full adjacency list
        # payload (BASELINE) is far bigger than a (vertex, similarity) pair
        # (SNAPLE).
        neighborhood = {7: list(range(200))}
        pair = {7: 0.25}
        assert payload_size_bytes(neighborhood) > 50 * payload_size_bytes(pair)


class _MinimalProgram(VertexProgram):
    name = "minimal"

    def gather(self, u, v, u_data, v_data):
        return 1

    def apply(self, u, u_data, gathered):
        u_data["total"] = gathered


class TestVertexProgramDefaults:
    def test_default_directions(self):
        program = _MinimalProgram()
        assert program.gather_direction is EdgeDirection.OUT
        assert program.scatter_direction is EdgeDirection.NONE

    def test_default_compute_cost(self):
        assert _MinimalProgram().compute_cost(123) == 1

    def test_default_payload_uses_size_estimate(self):
        assert _MinimalProgram().gather_payload_bytes([1, 2]) == 16

    def test_sum_not_implemented_by_default(self):
        with pytest.raises(NotImplementedError):
            _MinimalProgram().sum(1, 2)

    def test_scatter_is_noop_by_default(self):
        assert _MinimalProgram().scatter(0, 1, {}, {}) is None
