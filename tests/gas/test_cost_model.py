"""Unit tests for the analytical cost model."""

from __future__ import annotations

import pytest

from repro.gas.cluster import TYPE_I, TYPE_II, cluster_of
from repro.gas.cost_model import CostModel
from repro.gas.metrics import RunMetrics, StepMetrics


def _step(compute_per_machine, network_per_machine=None, sync_per_machine=None,
          name="step"):
    machines = len(compute_per_machine)
    return StepMetrics(
        name=name,
        num_machines=machines,
        compute_units_per_machine=list(compute_per_machine),
        network_bytes_per_machine=list(network_per_machine or [0] * machines),
        sync_bytes_per_machine=list(sync_per_machine or [0] * machines),
    )


class TestStepCost:
    def test_compute_time_uses_slowest_machine(self):
        model = CostModel(cluster_of(TYPE_I, 2))
        breakdown = model.step_cost(_step([100, 400]))
        throughput = TYPE_I.cores * TYPE_I.core_ops_per_second
        assert breakdown.compute_seconds == pytest.approx(400 / throughput)

    def test_single_machine_pays_no_network(self):
        model = CostModel(cluster_of(TYPE_II, 1))
        breakdown = model.step_cost(_step([100], [10_000], [5_000]))
        assert breakdown.network_seconds == 0.0

    def test_distributed_network_time(self):
        model = CostModel(cluster_of(TYPE_II, 2))
        breakdown = model.step_cost(_step([0, 0], [1_000, 5_000], [0, 5_000]))
        assert breakdown.network_seconds == pytest.approx(
            10_000 / TYPE_II.network_bytes_per_second
        )

    def test_barrier_always_charged(self):
        model = CostModel(cluster_of(TYPE_I, 4))
        breakdown = model.step_cost(_step([0, 0, 0, 0]))
        assert breakdown.barrier_seconds == TYPE_I.barrier_latency_seconds
        assert breakdown.total_seconds == pytest.approx(breakdown.barrier_seconds)

    def test_total_is_sum_of_components(self):
        model = CostModel(cluster_of(TYPE_I, 2))
        breakdown = model.step_cost(_step([1000, 2000], [500, 700]))
        assert breakdown.total_seconds == pytest.approx(
            breakdown.compute_seconds
            + breakdown.network_seconds
            + breakdown.barrier_seconds
        )


class TestRunCost:
    def test_run_cost_sums_steps(self):
        model = CostModel(cluster_of(TYPE_I, 2))
        metrics = RunMetrics()
        metrics.add_step(_step([100, 200], name="a"))
        metrics.add_step(_step([300, 50], name="b"))
        expected = sum(b.total_seconds for b in model.breakdown(metrics))
        assert model.run_cost(metrics) == pytest.approx(expected)

    def test_more_machines_reduce_balanced_compute_time(self):
        metrics_small = RunMetrics()
        metrics_small.add_step(_step([1_000_000, 1_000_000]))
        metrics_large = RunMetrics()
        metrics_large.add_step(_step([250_000] * 8))
        small = CostModel(cluster_of(TYPE_I, 2)).run_cost(metrics_small)
        large = CostModel(cluster_of(TYPE_I, 8)).run_cost(metrics_large)
        assert large < small

    def test_type_ii_faster_than_type_i_for_same_work(self):
        metrics = RunMetrics()
        metrics.add_step(_step([1_000_000]))
        type_i = CostModel(cluster_of(TYPE_I, 1)).run_cost(metrics)
        type_ii = CostModel(cluster_of(TYPE_II, 1)).run_cost(metrics)
        assert type_ii < type_i

    def test_speedup_against(self):
        metrics = RunMetrics()
        metrics.add_step(_step([1_000_000]))
        fast = CostModel(cluster_of(TYPE_II, 4))
        slow = CostModel(cluster_of(TYPE_I, 1))
        fast_metrics = RunMetrics()
        fast_metrics.add_step(_step([250_000] * 4))
        speedup = fast.speedup_against(fast_metrics, slow, metrics)
        assert speedup > 1.0
