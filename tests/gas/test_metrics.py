"""Unit tests for the GAS run metrics containers."""

from __future__ import annotations

from repro.gas.metrics import RunMetrics, StepMetrics


class TestStepMetrics:
    def test_defaults_initialized_per_machine(self):
        step = StepMetrics(name="s", num_machines=3)
        assert step.compute_units_per_machine == [0, 0, 0]
        assert step.network_bytes_per_machine == [0, 0, 0]
        assert step.sync_bytes_per_machine == [0, 0, 0]
        assert step.vertex_data_bytes_per_machine == [0, 0, 0]

    def test_totals(self):
        step = StepMetrics(
            name="s",
            num_machines=2,
            compute_units_per_machine=[5, 7],
            network_bytes_per_machine=[100, 50],
            sync_bytes_per_machine=[10, 20],
        )
        assert step.total_compute_units == 12
        assert step.total_network_bytes == 180

    def test_max_machine_memory(self):
        step = StepMetrics(
            name="s",
            num_machines=2,
            vertex_data_bytes_per_machine=[300, 800],
        )
        assert step.max_machine_memory_bytes == 800


class TestRunMetrics:
    def test_empty_run(self):
        run = RunMetrics()
        assert run.total_compute_units == 0
        assert run.total_network_bytes == 0
        assert run.peak_machine_memory_bytes == 0
        assert run.total_gather_invocations == 0

    def test_aggregation_over_steps(self):
        run = RunMetrics()
        run.add_step(StepMetrics(name="a", num_machines=1,
                                 compute_units_per_machine=[10],
                                 gather_invocations=4,
                                 vertex_data_bytes_per_machine=[100]))
        run.add_step(StepMetrics(name="b", num_machines=1,
                                 compute_units_per_machine=[20],
                                 gather_invocations=6,
                                 vertex_data_bytes_per_machine=[50]))
        assert run.total_compute_units == 30
        assert run.total_gather_invocations == 10
        assert run.peak_machine_memory_bytes == 100

    def test_describe_contains_step_names(self):
        run = RunMetrics()
        run.add_step(StepMetrics(name="sample", num_machines=1))
        run.add_step(StepMetrics(name="score", num_machines=1))
        text = run.describe()
        assert "sample" in text
        assert "score" in text
