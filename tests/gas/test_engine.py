"""Unit tests for the synchronous GAS engine."""

from __future__ import annotations

import pytest

from repro.errors import EngineError, ResourceExhaustedError
from repro.gas.cluster import TYPE_I, TYPE_II, ClusterConfig, cluster_of
from repro.gas.engine import GasEngine
from repro.gas.vertex_program import EdgeDirection, VertexProgram
from repro.graph.digraph import DiGraph


class DegreeCountProgram(VertexProgram):
    """Counts out-neighbors; the simplest non-trivial GAS step."""

    name = "degree-count"

    def gather(self, u, v, u_data, v_data):
        return 1

    def sum(self, left, right):
        return left + right

    def apply(self, u, u_data, gathered):
        u_data["degree"] = gathered if gathered is not None else 0


class NeighborIdProgram(VertexProgram):
    """Collects neighbor ids (mirrors SNAPLE's step 1)."""

    name = "neighbor-ids"

    def gather(self, u, v, u_data, v_data):
        return [v]

    def sum(self, left, right):
        return left + right

    def apply(self, u, u_data, gathered):
        u_data["neighbors"] = sorted(gathered or [])


class InDegreeProgram(VertexProgram):
    """Counts in-neighbors, exercising the IN gather direction."""

    name = "in-degree"
    gather_direction = EdgeDirection.IN

    def gather(self, u, v, u_data, v_data):
        return 1

    def sum(self, left, right):
        return left + right

    def apply(self, u, u_data, gathered):
        u_data["in_degree"] = gathered if gathered is not None else 0


class ScatterMarkProgram(VertexProgram):
    """Marks outgoing edges in the scatter phase."""

    name = "scatter-mark"
    scatter_direction = EdgeDirection.OUT

    def gather(self, u, v, u_data, v_data):
        return 1

    def sum(self, left, right):
        return left + right

    def apply(self, u, u_data, gathered):
        u_data["count"] = gathered or 0

    def scatter(self, u, v, u_data, edge_data):
        edge_data["touched"] = True


class TestEngineCorrectness:
    def test_degree_count_matches_graph(self, small_social_graph):
        engine = GasEngine(graph=small_social_graph)
        result = engine.run([DegreeCountProgram()])
        for vertex in small_social_graph.vertices():
            assert result.data_of(vertex)["degree"] == small_social_graph.out_degree(vertex)

    def test_results_identical_across_cluster_sizes(self, small_social_graph):
        single = GasEngine(graph=small_social_graph, cluster=cluster_of(TYPE_II, 1))
        distributed = GasEngine(graph=small_social_graph, cluster=cluster_of(TYPE_I, 8))
        result_single = single.run([NeighborIdProgram()])
        result_distributed = distributed.run([NeighborIdProgram()])
        for vertex in small_social_graph.vertices():
            assert (
                result_single.data_of(vertex)["neighbors"]
                == result_distributed.data_of(vertex)["neighbors"]
            )

    def test_in_direction_gather(self, star_graph):
        engine = GasEngine(graph=star_graph)
        result = engine.run([InDegreeProgram()])
        assert result.data_of(0)["in_degree"] == 10

    def test_restricted_vertex_set(self, small_social_graph):
        engine = GasEngine(graph=small_social_graph)
        result = engine.run([DegreeCountProgram()], vertices=[0, 1, 2])
        assert "degree" in result.data_of(0)
        assert "degree" not in result.data_of(10)

    def test_scatter_updates_edge_data(self, triangle_graph):
        engine = GasEngine(graph=triangle_graph)
        engine.run([ScatterMarkProgram()])
        assert engine._edge_data[(0, 1)]["touched"] is True

    def test_empty_step_list_rejected(self, triangle_graph):
        with pytest.raises(EngineError):
            GasEngine(graph=triangle_graph).run([])

    def test_sequential_steps_share_vertex_data(self, triangle_graph):
        class ReadPrevious(VertexProgram):
            name = "read-previous"

            def gather(self, u, v, u_data, v_data):
                return v_data.get("degree", 0)

            def sum(self, left, right):
                return left + right

            def apply(self, u, u_data, gathered):
                u_data["neighbor_degree_sum"] = gathered or 0

        engine = GasEngine(graph=triangle_graph)
        result = engine.run([DegreeCountProgram(), ReadPrevious()])
        assert result.data_of(0)["neighbor_degree_sum"] == 1


class TestEngineAccounting:
    def test_gather_invocations_equal_edges(self, small_social_graph):
        engine = GasEngine(graph=small_social_graph)
        result = engine.run([DegreeCountProgram()])
        step = result.metrics.steps[0]
        assert step.gather_invocations == small_social_graph.num_edges

    def test_single_machine_has_no_network_traffic(self, small_social_graph):
        engine = GasEngine(graph=small_social_graph, cluster=cluster_of(TYPE_II, 1))
        result = engine.run([NeighborIdProgram()])
        assert result.metrics.total_network_bytes == 0

    def test_distributed_run_has_network_traffic(self, small_social_graph):
        engine = GasEngine(graph=small_social_graph, cluster=cluster_of(TYPE_I, 8))
        result = engine.run([NeighborIdProgram()])
        assert result.metrics.total_network_bytes > 0

    def test_more_machines_not_slower_in_compute(self, medium_social_graph):
        few = GasEngine(graph=medium_social_graph, cluster=cluster_of(TYPE_I, 2))
        many = GasEngine(graph=medium_social_graph, cluster=cluster_of(TYPE_I, 16))
        cost_few = max(few.run([DegreeCountProgram()]).metrics.steps[0]
                       .compute_units_per_machine)
        cost_many = max(many.run([DegreeCountProgram()]).metrics.steps[0]
                        .compute_units_per_machine)
        assert cost_many <= cost_few

    def test_simulated_time_positive(self, small_social_graph):
        engine = GasEngine(graph=small_social_graph, cluster=cluster_of(TYPE_I, 4))
        result = engine.run([NeighborIdProgram()])
        assert result.simulated_seconds > 0
        assert result.wall_clock_seconds > 0

    def test_peak_memory_recorded(self, small_social_graph):
        engine = GasEngine(graph=small_social_graph)
        result = engine.run([NeighborIdProgram()])
        assert result.metrics.peak_machine_memory_bytes > 0

    def test_metrics_describe_mentions_steps(self, triangle_graph):
        engine = GasEngine(graph=triangle_graph)
        result = engine.run([DegreeCountProgram()])
        assert "degree-count" in result.metrics.describe()


class TestMemoryEnforcement:
    def test_tiny_capacity_triggers_resource_exhaustion(self, medium_social_graph):
        tiny = ClusterConfig(machine=TYPE_I, num_machines=2, memory_scale=1e-9)
        engine = GasEngine(graph=medium_social_graph, cluster=tiny, enforce_memory=True)
        with pytest.raises(ResourceExhaustedError) as excinfo:
            engine.run([NeighborIdProgram()])
        assert excinfo.value.machine is not None
        assert excinfo.value.requested_bytes > excinfo.value.capacity_bytes

    def test_enforcement_can_be_disabled(self, medium_social_graph):
        tiny = ClusterConfig(machine=TYPE_I, num_machines=2, memory_scale=1e-9)
        engine = GasEngine(graph=medium_social_graph, cluster=tiny, enforce_memory=False)
        result = engine.run([NeighborIdProgram()])
        assert result.metrics.peak_machine_memory_bytes > tiny.per_machine_memory_bytes
