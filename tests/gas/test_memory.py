"""Unit tests for the memory tracker."""

from __future__ import annotations

import pytest

from repro.errors import ResourceExhaustedError
from repro.gas.cluster import TYPE_I, ClusterConfig
from repro.gas.memory import MemoryTracker


def _tracker(memory_scale=1.0, machines=2, enforce=True):
    cluster = ClusterConfig(machine=TYPE_I, num_machines=machines,
                            memory_scale=memory_scale)
    return MemoryTracker(cluster, enforce=enforce)


class TestCharging:
    def test_charge_and_release(self):
        tracker = _tracker()
        tracker.charge(0, 1000)
        assert tracker.usage_bytes(0) == 1000
        tracker.release(0, 400)
        assert tracker.usage_bytes(0) == 600

    def test_release_never_goes_negative(self):
        tracker = _tracker()
        tracker.charge(0, 100)
        tracker.release(0, 1_000_000)
        assert tracker.usage_bytes(0) == 0

    def test_peak_tracks_high_water_mark(self):
        tracker = _tracker()
        tracker.charge(1, 500)
        tracker.release(1, 500)
        tracker.charge(1, 200)
        assert tracker.peak_bytes(1) == 500
        assert tracker.usage_bytes(1) == 200

    def test_charge_value_estimates_size(self):
        tracker = _tracker()
        charged = tracker.charge_value(0, [1, 2, 3])
        assert charged == 24
        assert tracker.usage_bytes(0) == 24

    def test_per_machine_isolation(self):
        tracker = _tracker(machines=3)
        tracker.charge(0, 100)
        tracker.charge(2, 300)
        assert tracker.usage_bytes(1) == 0
        assert tracker.peak_per_machine() == [100, 0, 300]
        assert tracker.total_peak_bytes() == 400


class TestEnforcement:
    def test_exceeding_capacity_raises(self):
        tracker = _tracker(memory_scale=1e-9)
        with pytest.raises(ResourceExhaustedError) as excinfo:
            tracker.charge(0, 10_000)
        assert excinfo.value.machine == 0

    def test_error_carries_capacity_information(self):
        tracker = _tracker(memory_scale=1e-9)
        with pytest.raises(ResourceExhaustedError) as excinfo:
            tracker.charge(1, 10_000)
        assert excinfo.value.requested_bytes == 10_000
        assert excinfo.value.capacity_bytes >= 0

    def test_enforcement_disabled_records_peak_only(self):
        tracker = _tracker(memory_scale=1e-9, enforce=False)
        tracker.charge(0, 10_000_000)
        assert tracker.peak_bytes(0) == 10_000_000

    def test_capacity_respects_memory_scale(self):
        full = _tracker(memory_scale=1.0)
        tiny = _tracker(memory_scale=0.001)
        assert tiny.capacity_bytes == pytest.approx(full.capacity_bytes * 0.001)
