"""Unit tests for edge-list I/O."""

from __future__ import annotations

import gzip

import pytest

from repro.errors import GraphIOError
from repro.graph.digraph import DiGraph
from repro.graph.io import (
    iter_edge_list,
    load_graph,
    read_edge_list,
    save_graph,
    save_graph_memmap,
    write_edge_list,
)


class TestReading:
    def test_read_basic_edge_list(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("# a comment\n1 2\n2 3\n\n3 1\n")
        graph = read_edge_list(path)
        assert graph.num_vertices == 3
        assert graph.num_edges == 3

    def test_read_tab_separated_and_percent_comments(self, tmp_path):
        path = tmp_path / "graph.tsv"
        path.write_text("% header\n10\t20\n20\t30\n")
        graph = read_edge_list(path)
        assert graph.num_edges == 2

    def test_sparse_ids_remapped_densely(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("1000 2000\n2000 5\n")
        graph = read_edge_list(path)
        assert graph.num_vertices == 3
        assert graph.num_edges == 2

    def test_undirected_duplicates_both_directions(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("1 2\n")
        graph = read_edge_list(path, undirected=True)
        assert graph.num_edges == 2

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(GraphIOError):
            read_edge_list(tmp_path / "missing.txt")

    def test_malformed_line_raises_with_line_number(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("1 2\nonly-one-column\n")
        with pytest.raises(GraphIOError, match=":2:"):
            list(iter_edge_list(path))

    def test_non_integer_vertex_raises(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("a b\n")
        with pytest.raises(GraphIOError):
            list(iter_edge_list(path))

    def test_gzip_round_trip(self, tmp_path):
        path = tmp_path / "graph.txt.gz"
        with gzip.open(path, "wt", encoding="utf-8") as handle:
            handle.write("1 2\n2 3\n")
        graph = read_edge_list(path)
        assert graph.num_edges == 2


class TestWriting:
    def test_write_and_read_round_trip(self, tmp_path, small_social_graph):
        path = tmp_path / "round.txt"
        count = save_graph(small_social_graph, path)
        assert count == small_social_graph.num_edges
        loaded = load_graph(path)
        assert loaded.num_edges == small_social_graph.num_edges
        assert loaded.num_vertices == small_social_graph.num_vertices

    def test_header_written_as_comments(self, tmp_path):
        path = tmp_path / "with_header.txt"
        write_edge_list(path, [(0, 1)], header="generated\nfor tests")
        content = path.read_text()
        assert content.startswith("# generated\n# for tests\n")

    def test_write_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "graph.txt"
        write_edge_list(path, [(0, 1), (1, 2)])
        assert path.exists()

    def test_write_empty_graph(self, tmp_path):
        path = tmp_path / "empty.txt"
        count = save_graph(DiGraph(3, [], []), path)
        assert count == 0
        assert load_graph(path).num_edges == 0


class TestContainerRoundTrip:
    """save_graph_memmap → load_graph auto-detect → adjacency equality."""

    def test_memmap_load_preserves_out_adjacency(self, tmp_path,
                                                 small_social_graph):
        container = save_graph_memmap(small_social_graph, tmp_path / "g")
        loaded = load_graph(container)
        ref_indptr, ref_indices = small_social_graph.csr_out_adjacency()
        got_indptr, got_indices = loaded.csr_out_adjacency()
        assert (ref_indptr == got_indptr).all()
        assert (ref_indices == got_indices).all()

    def test_load_graph_dispatches_on_container(self, tmp_path,
                                                small_social_graph):
        edge_list = tmp_path / "g.txt"
        save_graph(small_social_graph, edge_list)
        container = save_graph_memmap(small_social_graph, tmp_path / "g.mm")
        from_list = load_graph(edge_list)
        from_container = load_graph(container)
        # Edge lists remap sparse IDs densely; the container preserves them.
        assert from_list.num_edges == from_container.num_edges
        assert sorted(from_container.edges()) == \
            sorted(small_social_graph.edges())

    def test_container_rejects_undirected(self, tmp_path, small_social_graph):
        container = save_graph_memmap(small_social_graph, tmp_path / "g")
        with pytest.raises(GraphIOError, match="undirected"):
            load_graph(container, undirected=True)

    def test_empty_graph_container_round_trip(self, tmp_path):
        container = save_graph_memmap(DiGraph(4, [], []), tmp_path / "empty")
        loaded = load_graph(container)
        assert loaded.num_vertices == 4
        assert loaded.num_edges == 0
        indptr, indices = loaded.csr_out_adjacency()
        assert indptr.size == 5
        assert indices.size == 0

    def test_max_degree_vertex_adjacency(self, tmp_path, star_graph):
        container = save_graph_memmap(star_graph, tmp_path / "star")
        loaded = load_graph(container)
        for v in star_graph.vertices():
            assert list(loaded.out_neighbors(v)) == \
                list(star_graph.out_neighbors(v))
