"""Unit tests for the synthetic dataset analogs."""

from __future__ import annotations

import pytest

from repro.errors import GraphError
from repro.graph.datasets import (
    DATASETS,
    PAPER_EDGE_COUNTS,
    dataset_names,
    dataset_spec,
    load_dataset,
)


class TestRegistry:
    def test_all_paper_datasets_present(self):
        assert set(DATASETS) == {
            "gowalla", "pokec", "livejournal", "orkut", "twitter-rv",
        }

    def test_dataset_names_ordered_by_paper_size(self):
        names = dataset_names()
        sizes = [DATASETS[name].paper_edges for name in names]
        assert sizes == sorted(sizes)
        assert names[0] == "gowalla"
        assert names[-1] == "twitter-rv"

    def test_paper_edge_counts_match_table4(self):
        assert PAPER_EDGE_COUNTS["gowalla"] == 950_000
        assert PAPER_EDGE_COUNTS["twitter-rv"] == 1_400_000_000

    def test_unknown_dataset_raises(self):
        with pytest.raises(GraphError):
            dataset_spec("facebook")
        with pytest.raises(GraphError):
            load_dataset("facebook")

    def test_spec_scale_validation(self):
        spec = dataset_spec("gowalla")
        with pytest.raises(GraphError):
            spec.vertices_at_scale(0)
        assert spec.vertices_at_scale(2.0) == 2 * spec.base_vertices


class TestGeneration:
    @pytest.mark.parametrize("name", sorted(DATASETS))
    def test_each_dataset_generates_nonempty_graph(self, name):
        graph = load_dataset(name, scale=0.25, seed=1)
        assert graph.num_vertices > 0
        assert graph.num_edges > 0

    def test_deterministic_given_seed_and_scale(self):
        first = load_dataset("gowalla", scale=0.5, seed=3)
        second = load_dataset("gowalla", scale=0.5, seed=3)
        assert first is second  # lru_cache returns the same object

    def test_scale_controls_size(self):
        small = load_dataset("pokec", scale=0.25, seed=1)
        large = load_dataset("pokec", scale=0.75, seed=1)
        assert large.num_vertices > small.num_vertices
        assert large.num_edges > small.num_edges

    def test_relative_order_of_sizes_preserved(self):
        sizes = {
            name: load_dataset(name, scale=0.25, seed=1).num_edges
            for name in ("gowalla", "livejournal", "orkut")
        }
        assert sizes["gowalla"] < sizes["livejournal"] < sizes["orkut"]

    def test_undirected_datasets_are_symmetric(self):
        graph = load_dataset("gowalla", scale=0.25, seed=1)
        for u, v in list(graph.edges())[:500]:
            assert graph.has_edge(v, u)

    def test_twitter_analog_has_skewed_degrees(self):
        graph = load_dataset("twitter-rv", scale=0.5, seed=1)
        degrees = graph.out_degrees()
        assert degrees.max() > 8 * max(1.0, degrees.mean())
