"""Unit tests for graph traversal utilities."""

from __future__ import annotations

import pytest

from repro.errors import GraphError
from repro.eval.protocol import remove_random_edges
from repro.graph.digraph import DiGraph
from repro.graph.traversal import (
    bfs_distances,
    effective_diameter,
    largest_component_fraction,
    two_hop_coverage,
    weakly_connected_components,
)


class TestBfs:
    def test_distances_on_a_chain(self):
        chain = DiGraph(4, [0, 1, 2], [1, 2, 3])
        assert bfs_distances(chain, 0) == {0: 0, 1: 1, 2: 2, 3: 3}

    def test_unreachable_vertices_absent(self):
        graph = DiGraph(4, [0], [1])
        distances = bfs_distances(graph, 0)
        assert 2 not in distances
        assert 3 not in distances

    def test_max_depth_bounds_exploration(self):
        chain = DiGraph(5, [0, 1, 2, 3], [1, 2, 3, 4])
        distances = bfs_distances(chain, 0, max_depth=2)
        assert max(distances.values()) == 2

    def test_negative_depth_rejected(self, triangle_graph):
        with pytest.raises(GraphError):
            bfs_distances(triangle_graph, 0, max_depth=-1)

    def test_direction_is_respected(self):
        graph = DiGraph(3, [1, 2], [0, 1])
        assert bfs_distances(graph, 0) == {0: 0}


class TestComponents:
    def test_single_component(self, triangle_graph):
        components = weakly_connected_components(triangle_graph)
        assert len(components) == 1
        assert components[0] == {0, 1, 2}

    def test_isolated_vertices_are_singletons(self):
        graph = DiGraph(4, [0], [1])
        components = weakly_connected_components(graph)
        assert len(components) == 3
        assert components[0] == {0, 1}

    def test_direction_ignored(self):
        graph = DiGraph(3, [1, 2], [0, 0])
        assert len(weakly_connected_components(graph)) == 1

    def test_largest_component_fraction(self):
        graph = DiGraph(4, [0], [1])
        assert largest_component_fraction(graph) == pytest.approx(0.5)
        assert largest_component_fraction(DiGraph(0, [], [])) == 0.0

    def test_generated_social_graph_is_mostly_connected(self, small_social_graph):
        assert largest_component_fraction(small_social_graph) > 0.9


class TestTwoHopCoverage:
    def test_no_edges_gives_zero(self, triangle_graph):
        assert two_hop_coverage(triangle_graph, []) == 0.0

    def test_full_coverage(self):
        # 0 -> 1 -> 2; the held-out edge (0, 2) is exactly two hops away.
        graph = DiGraph(3, [0, 1], [1, 2])
        assert two_hop_coverage(graph, [(0, 2)]) == 1.0

    def test_partial_coverage(self):
        graph = DiGraph(4, [0, 1], [1, 2])
        assert two_hop_coverage(graph, [(0, 2), (0, 3)]) == pytest.approx(0.5)

    def test_clustered_graph_covers_most_removed_edges(self, medium_social_graph):
        # The property that justifies the paper's K = 2 restriction.
        split = remove_random_edges(medium_social_graph, seed=1)
        coverage = two_hop_coverage(split.train_graph, split.removed_edges)
        assert coverage > 0.5


class TestEffectiveDiameter:
    def test_chain_diameter(self):
        chain = DiGraph(5, [0, 1, 2, 3], [1, 2, 3, 4])
        stats = effective_diameter(chain, sample_size=5, percentile=1.0, seed=0)
        assert stats.effective_diameter == 4
        assert stats.sampled_sources == 5

    def test_small_world_graph_has_small_diameter(self, medium_social_graph):
        stats = effective_diameter(medium_social_graph, sample_size=30, seed=1)
        assert 1 <= stats.effective_diameter <= 8
        assert stats.mean_reachable > 0

    def test_percentile_validation(self, triangle_graph):
        with pytest.raises(GraphError):
            effective_diameter(triangle_graph, percentile=0.0)

    def test_empty_graph(self):
        stats = effective_diameter(DiGraph(0, [], []))
        assert stats.effective_diameter == 0
        assert stats.sampled_sources == 0
