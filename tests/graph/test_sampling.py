"""Unit tests for neighborhood truncation."""

from __future__ import annotations

import math
import random

import pytest

from repro.errors import GraphError
from repro.graph.sampling import (
    bernoulli_truncate,
    expected_truncated_size,
    reservoir_sample,
    truncate_neighborhood,
)


class TestBernoulliTruncate:
    def test_small_neighborhood_untouched(self):
        rng = random.Random(0)
        assert bernoulli_truncate([1, 2, 3], 10, rng=rng) == [1, 2, 3]

    def test_infinite_threshold_keeps_everything(self):
        rng = random.Random(0)
        neighbors = list(range(100))
        assert bernoulli_truncate(neighbors, math.inf, rng=rng) == neighbors

    def test_empty_neighborhood(self):
        assert bernoulli_truncate([], 5, rng=random.Random(0)) == []

    def test_truncation_reduces_expected_size(self):
        rng = random.Random(1)
        neighbors = list(range(1000))
        sizes = [len(bernoulli_truncate(neighbors, 50, rng=rng)) for _ in range(30)]
        mean_size = sum(sizes) / len(sizes)
        assert 30 <= mean_size <= 75

    def test_result_is_subset(self):
        rng = random.Random(2)
        neighbors = list(range(200))
        kept = bernoulli_truncate(neighbors, 20, rng=rng)
        assert set(kept) <= set(neighbors)

    def test_negative_threshold_rejected(self):
        with pytest.raises(GraphError):
            bernoulli_truncate([1, 2], -1, rng=random.Random(0))


class TestReservoirSample:
    def test_exact_size_guarantee(self):
        rng = random.Random(0)
        neighbors = list(range(500))
        kept = reservoir_sample(neighbors, 32, rng=rng)
        assert len(kept) == 32
        assert set(kept) <= set(neighbors)

    def test_small_input_returned_whole(self):
        rng = random.Random(0)
        assert reservoir_sample([7, 8], 10, rng=rng) == [7, 8]

    def test_uniformity_rough_check(self):
        counts = {i: 0 for i in range(20)}
        for trial in range(400):
            rng = random.Random(trial)
            for value in reservoir_sample(list(range(20)), 5, rng=rng):
                counts[value] += 1
        # Every element should be picked a comparable number of times.
        assert min(counts.values()) > 0.3 * max(counts.values())


class TestTruncateNeighborhood:
    def test_exact_mode_bounds_size(self):
        rng = random.Random(0)
        kept = truncate_neighborhood(list(range(100)), 10, rng=rng, exact=True)
        assert len(kept) == 10

    def test_default_mode_is_probabilistic(self):
        rng = random.Random(0)
        kept = truncate_neighborhood(list(range(100)), 10, rng=rng)
        assert set(kept) <= set(range(100))


class TestExpectedSize:
    def test_below_threshold(self):
        assert expected_truncated_size(5, 10) == 5.0

    def test_above_threshold(self):
        assert expected_truncated_size(100, 10) == 10.0

    def test_zero_degree(self):
        assert expected_truncated_size(0, 10) == 0.0

    def test_infinite_threshold(self):
        assert expected_truncated_size(100, math.inf) == 100.0

    def test_negative_threshold_rejected(self):
        with pytest.raises(GraphError):
            expected_truncated_size(10, -2)
