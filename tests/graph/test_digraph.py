"""Unit tests for the CSR-backed directed graph."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphError, VertexNotFoundError
from repro.graph.digraph import DiGraph


class TestConstruction:
    def test_empty_graph(self):
        graph = DiGraph(0, [], [])
        assert graph.num_vertices == 0
        assert graph.num_edges == 0

    def test_isolated_vertices(self):
        graph = DiGraph(5, [], [])
        assert graph.num_vertices == 5
        assert graph.num_edges == 0
        assert graph.out_degree(3) == 0

    def test_basic_edges(self, triangle_graph):
        assert triangle_graph.num_vertices == 3
        assert triangle_graph.num_edges == 3
        assert triangle_graph.has_edge(0, 1)
        assert not triangle_graph.has_edge(1, 0)

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(GraphError):
            DiGraph(3, [0, 1], [1])

    def test_out_of_range_endpoints_rejected(self):
        with pytest.raises(GraphError):
            DiGraph(2, [0], [5])
        with pytest.raises(GraphError):
            DiGraph(2, [-1], [0])

    def test_negative_vertex_count_rejected(self):
        with pytest.raises(GraphError):
            DiGraph(-1, [], [])

    def test_accepts_numpy_arrays(self):
        graph = DiGraph(3, np.array([0, 1]), np.array([1, 2]))
        assert graph.num_edges == 2


class TestNeighborhoods:
    def test_out_neighbors_sorted(self):
        graph = DiGraph(4, [0, 0, 0], [3, 1, 2])
        assert graph.out_neighbors(0).tolist() == [1, 2, 3]

    def test_in_neighbors(self):
        graph = DiGraph(4, [0, 1, 2], [3, 3, 3])
        assert graph.in_neighbors(3).tolist() == [0, 1, 2]
        assert graph.in_degree(3) == 3
        assert graph.out_degree(3) == 0

    def test_degree_arrays_match_scalar_degrees(self, small_social_graph):
        out = small_social_graph.out_degrees()
        for vertex in range(small_social_graph.num_vertices):
            assert out[vertex] == small_social_graph.out_degree(vertex)

    def test_vertex_out_of_range_raises(self, triangle_graph):
        with pytest.raises(VertexNotFoundError):
            triangle_graph.out_neighbors(3)
        with pytest.raises(VertexNotFoundError):
            triangle_graph.out_degree(-1)

    def test_neighbor_set(self, triangle_graph):
        assert triangle_graph.neighbor_set(0) == {1}

    def test_has_edge_uses_sorted_lookup(self):
        graph = DiGraph(6, [0, 0, 0, 0], [5, 3, 1, 4])
        assert graph.has_edge(0, 4)
        assert not graph.has_edge(0, 2)


class TestTwoHop:
    def test_two_hop_excludes_direct_and_self(self, triangle_graph):
        # 0 -> 1 -> 2; two-hop of 0 is {2}.
        assert triangle_graph.two_hop_neighbors(0) == {2}

    def test_two_hop_keep_direct(self):
        # 0 -> {1, 2}, 1 -> 2: vertex 2 is both a direct and a 2-hop neighbor.
        graph = DiGraph(3, [0, 0, 1], [1, 2, 2])
        assert graph.two_hop_neighbors(0, exclude_direct=False) == {2}
        assert graph.two_hop_neighbors(0, exclude_direct=True) == set()

    def test_k_hop_matches_two_hop_for_k2(self, small_social_graph):
        for vertex in range(0, 50, 7):
            assert (
                small_social_graph.k_hop_neighbors(vertex, 2)
                == small_social_graph.two_hop_neighbors(vertex)
            )

    def test_k_hop_rejects_zero(self, triangle_graph):
        with pytest.raises(GraphError):
            triangle_graph.k_hop_neighbors(0, 0)

    def test_k_hop_grows_with_k(self, small_social_graph):
        one = small_social_graph.k_hop_neighbors(0, 1, exclude_direct=False)
        two = small_social_graph.k_hop_neighbors(0, 2, exclude_direct=False)
        three = small_social_graph.k_hop_neighbors(0, 3, exclude_direct=False)
        assert one <= two <= three


class TestDerivedGraphs:
    def test_reversed(self, triangle_graph):
        reverse = triangle_graph.reversed()
        assert reverse.has_edge(1, 0)
        assert reverse.has_edge(2, 1)
        assert not reverse.has_edge(0, 1)

    def test_to_undirected_symmetrizes(self):
        graph = DiGraph(3, [0, 1], [1, 2])
        undirected = graph.to_undirected()
        assert undirected.has_edge(1, 0)
        assert undirected.has_edge(2, 1)
        assert undirected.num_edges == 4

    def test_to_undirected_deduplicates(self):
        graph = DiGraph(2, [0, 1], [1, 0])
        assert graph.to_undirected().num_edges == 2

    def test_remove_edges(self, triangle_graph):
        smaller = triangle_graph.remove_edges([(0, 1)])
        assert smaller.num_edges == 2
        assert not smaller.has_edge(0, 1)
        assert smaller.has_edge(1, 2)

    def test_remove_edges_empty_set_returns_same_object(self, triangle_graph):
        assert triangle_graph.remove_edges([]) is triangle_graph

    def test_subgraph(self):
        graph = DiGraph(5, [0, 1, 2, 3], [1, 2, 3, 4])
        sub, mapping = graph.subgraph([1, 2, 3])
        assert sub.num_vertices == 3
        assert sub.num_edges == 2
        assert sub.has_edge(mapping[1], mapping[2])

    def test_subgraph_rejects_unknown_vertex(self, triangle_graph):
        with pytest.raises(VertexNotFoundError):
            triangle_graph.subgraph([0, 99])


class TestSummaryAndEquality:
    def test_summary_counts(self, triangle_graph):
        summary = triangle_graph.summary()
        assert summary.num_vertices == 3
        assert summary.num_edges == 3
        assert summary.max_out_degree == 1
        assert summary.mean_out_degree == pytest.approx(1.0)
        assert "|V|=3" in str(summary)

    def test_summary_empty_graph(self):
        summary = DiGraph(0, [], []).summary()
        assert summary.max_out_degree == 0
        assert summary.mean_out_degree == 0.0

    def test_equality(self, triangle_graph):
        same = DiGraph(3, [0, 1, 2], [1, 2, 0])
        different = DiGraph(3, [0, 1, 2], [2, 0, 1])
        assert triangle_graph == same
        assert triangle_graph != different

    def test_edges_iteration_matches_arrays(self, small_social_graph):
        src, dst = small_social_graph.edge_arrays()
        assert list(small_social_graph.edges()) == list(zip(src.tolist(), dst.tolist()))

    def test_edge_arrays_read_only(self, triangle_graph):
        src, _dst = triangle_graph.edge_arrays()
        with pytest.raises(ValueError):
            src[0] = 99


class TestEndpointInputForms:
    """Regression: generators/array-likes build without double materialization."""

    def test_generator_inputs_match_list_inputs(self):
        sources = [0, 1, 2, 2]
        targets = [1, 2, 0, 1]
        from_lists = DiGraph(3, sources, targets)
        from_generators = DiGraph(3, (s for s in sources), iter(targets))
        assert from_generators == from_lists
        assert list(from_generators.edges()) == list(from_lists.edges())

    def test_range_and_tuple_inputs(self):
        graph = DiGraph(4, range(3), (1, 2, 3))
        assert list(graph.edges()) == [(0, 1), (1, 2), (2, 3)]

    def test_numpy_inputs_of_other_dtypes(self):
        graph = DiGraph(
            3,
            np.array([0, 1], dtype=np.int32),
            np.array([1, 2], dtype=np.uint16),
        )
        src, dst = graph.edge_arrays()
        assert src.dtype == np.int64 and dst.dtype == np.int64
        assert graph == DiGraph(3, [0, 1], [1, 2])

    def test_int64_arrays_are_not_copied(self):
        sources = np.array([0, 1], dtype=np.int64)
        targets = np.array([1, 2], dtype=np.int64)
        graph = DiGraph(3, sources, targets)
        src, dst = graph.edge_arrays()
        assert np.shares_memory(src, sources)
        assert np.shares_memory(dst, targets)

    def test_empty_generator(self):
        graph = DiGraph(2, (s for s in ()), iter(()))
        assert graph.num_edges == 0

    def test_out_of_range_generator_endpoints_still_raise(self):
        with pytest.raises(GraphError):
            DiGraph(2, (s for s in [0, 5]), iter([1, 1]))

    def test_non_iterable_input_raises_graph_error(self):
        with pytest.raises(GraphError):
            DiGraph(2, 3, [1])

    def test_two_dimensional_array_rejected(self):
        with pytest.raises(GraphError):
            DiGraph(3, np.zeros((2, 2), dtype=np.int64), np.zeros((2, 2), dtype=np.int64))
