"""Tests for vertex profiles (the content layer of the content-aware extension)."""

from __future__ import annotations

import pytest

from repro.errors import GraphError
from repro.graph import generators
from repro.graph.attributes import (
    VertexProfiles,
    generate_profiles,
    profile_cosine,
    profile_jaccard,
    profile_overlap,
)
from repro.graph.digraph import DiGraph


class TestProfileSimilarities:
    def test_jaccard_of_identical_profiles_is_one(self):
        profile = frozenset({1, 2, 3})
        assert profile_jaccard(profile, profile) == 1.0

    def test_jaccard_of_disjoint_profiles_is_zero(self):
        assert profile_jaccard(frozenset({1}), frozenset({2})) == 0.0

    def test_jaccard_of_empty_profiles_is_zero(self):
        assert profile_jaccard(frozenset(), frozenset()) == 0.0

    def test_cosine_matches_manual_computation(self):
        value = profile_cosine(frozenset({1, 2}), frozenset({2, 3, 4}))
        assert value == pytest.approx(1 / (2 * 3) ** 0.5)

    def test_cosine_with_one_empty_profile_is_zero(self):
        assert profile_cosine(frozenset(), frozenset({1})) == 0.0

    def test_overlap_uses_the_smaller_profile(self):
        value = profile_overlap(frozenset({1, 2}), frozenset({1, 2, 3, 4}))
        assert value == 1.0

    def test_all_similarities_are_symmetric(self):
        a = frozenset({1, 2, 5})
        b = frozenset({2, 5, 9, 11})
        for fn in (profile_jaccard, profile_cosine, profile_overlap):
            assert fn(a, b) == pytest.approx(fn(b, a))


class TestVertexProfiles:
    def test_from_mapping_fills_missing_vertices(self):
        profiles = VertexProfiles.from_mapping(
            {0: [1, 2], 2: [3]}, num_vertices=4
        )
        assert profiles.of(0) == frozenset({1, 2})
        assert profiles.of(1) == frozenset()
        assert profiles.of(3) == frozenset()
        assert profiles.num_tags == 4

    def test_rejects_out_of_range_tags(self):
        with pytest.raises(GraphError):
            VertexProfiles(tags=(frozenset({5}),), num_tags=3)

    def test_of_rejects_unknown_vertex(self):
        profiles = VertexProfiles.from_mapping({0: [0]}, num_vertices=1)
        with pytest.raises(GraphError):
            profiles.of(5)

    def test_mean_profile_size(self):
        profiles = VertexProfiles.from_mapping(
            {0: [0, 1], 1: [2]}, num_vertices=2, num_tags=3
        )
        assert profiles.mean_profile_size() == pytest.approx(1.5)

    def test_tag_usage_counts_vertices_per_tag(self):
        profiles = VertexProfiles.from_mapping(
            {0: [0, 1], 1: [1]}, num_vertices=2, num_tags=2
        )
        assert profiles.tag_usage() == {0: 1, 1: 2}


class TestGenerateProfiles:
    def test_profiles_cover_every_vertex(self, small_social_graph):
        profiles = generate_profiles(small_social_graph, seed=1)
        assert profiles.num_vertices == small_social_graph.num_vertices
        assert all(len(profiles.of(u)) > 0 for u in small_social_graph.vertices())

    def test_deterministic_for_a_seed(self, small_social_graph):
        first = generate_profiles(small_social_graph, seed=5)
        second = generate_profiles(small_social_graph, seed=5)
        assert first.tags == second.tags

    def test_profile_size_is_bounded(self, small_social_graph):
        profiles = generate_profiles(
            small_social_graph, tags_per_vertex=3, num_tags=30, seed=2
        )
        assert all(len(profiles.of(u)) <= 3 for u in small_social_graph.vertices())

    def test_rejects_invalid_parameters(self, triangle_graph):
        with pytest.raises(GraphError):
            generate_profiles(triangle_graph, num_tags=0)
        with pytest.raises(GraphError):
            generate_profiles(triangle_graph, tags_per_vertex=-1)
        with pytest.raises(GraphError):
            generate_profiles(triangle_graph, homophily=1.5)

    def test_homophilous_profiles_correlate_with_edges(self):
        graph = generators.powerlaw_cluster(400, 4, 0.5, seed=3)
        correlated = generate_profiles(graph, homophily=0.9, seed=3)
        random_profiles = generate_profiles(graph, homophily=0.0, seed=3)
        assert correlated.homophily(graph) > random_profiles.homophily(graph)
        assert correlated.homophily(graph) > 0.05

    def test_zero_homophily_profiles_are_roughly_structure_free(self):
        graph = generators.powerlaw_cluster(300, 4, 0.5, seed=4)
        profiles = generate_profiles(graph, homophily=0.0, num_tags=40, seed=4)
        assert abs(profiles.homophily(graph)) < 0.1

    def test_homophily_of_empty_graph_is_zero(self):
        graph = DiGraph(3, [], [])
        profiles = generate_profiles(graph, seed=1)
        assert profiles.homophily(graph) == 0.0
