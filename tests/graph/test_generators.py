"""Unit tests for the synthetic graph generators."""

from __future__ import annotations

import pytest

from repro.errors import GraphError
from repro.graph import generators
from repro.graph.stats import average_clustering


class TestErdosRenyi:
    def test_zero_probability_gives_no_edges(self):
        graph = generators.erdos_renyi(20, 0.0, seed=1)
        assert graph.num_edges == 0

    def test_full_probability_gives_complete_graph(self):
        graph = generators.erdos_renyi(10, 1.0, seed=1)
        assert graph.num_edges == 10 * 9

    def test_invalid_probability_rejected(self):
        with pytest.raises(GraphError):
            generators.erdos_renyi(10, 1.5)

    def test_deterministic_given_seed(self):
        first = generators.erdos_renyi(30, 0.1, seed=3)
        second = generators.erdos_renyi(30, 0.1, seed=3)
        assert first == second

    def test_different_seeds_differ(self):
        first = generators.erdos_renyi(30, 0.1, seed=3)
        second = generators.erdos_renyi(30, 0.1, seed=4)
        assert first != second


class TestBarabasiAlbert:
    def test_symmetric_edges(self):
        graph = generators.barabasi_albert(100, 3, seed=0)
        for u, v in graph.edges():
            assert graph.has_edge(v, u)

    def test_heavy_tail_hub_exists(self):
        graph = generators.barabasi_albert(500, 3, seed=0)
        degrees = graph.out_degrees()
        assert degrees.max() > 5 * degrees.mean()

    def test_parameter_validation(self):
        with pytest.raises(GraphError):
            generators.barabasi_albert(10, 0)
        with pytest.raises(GraphError):
            generators.barabasi_albert(5, 5)

    def test_expected_edge_count_roughly_matches(self):
        graph = generators.barabasi_albert(200, 4, seed=2)
        expected = generators.expected_edges("barabasi_albert", (200, 4))
        assert graph.num_edges == pytest.approx(expected, rel=0.2)


class TestPowerlawCluster:
    def test_symmetric_edges(self):
        graph = generators.powerlaw_cluster(200, 3, 0.5, seed=1)
        for u, v in graph.edges():
            assert graph.has_edge(v, u)

    def test_no_self_loops(self):
        graph = generators.powerlaw_cluster(200, 3, 0.5, seed=1)
        assert all(u != v for u, v in graph.edges())

    def test_triangle_probability_raises_clustering(self):
        low = generators.powerlaw_cluster(400, 3, 0.0, seed=5)
        high = generators.powerlaw_cluster(400, 3, 0.9, seed=5)
        assert (
            average_clustering(high, sample_size=200, seed=1)
            > average_clustering(low, sample_size=200, seed=1)
        )

    def test_parameter_validation(self):
        with pytest.raises(GraphError):
            generators.powerlaw_cluster(1, 1, 0.5)
        with pytest.raises(GraphError):
            generators.powerlaw_cluster(10, 0, 0.5)
        with pytest.raises(GraphError):
            generators.powerlaw_cluster(10, 3, 1.5)

    def test_deterministic_given_seed(self):
        assert generators.powerlaw_cluster(100, 3, 0.4, seed=9) == (
            generators.powerlaw_cluster(100, 3, 0.4, seed=9)
        )


class TestWattsStrogatz:
    def test_zero_rewire_is_ring_lattice(self):
        graph = generators.watts_strogatz(20, 4, 0.0, seed=0)
        assert graph.num_edges == 20 * 4
        assert graph.has_edge(0, 1)
        assert graph.has_edge(0, 19)

    def test_rewiring_preserves_vertex_count(self):
        graph = generators.watts_strogatz(50, 4, 0.3, seed=0)
        assert graph.num_vertices == 50

    def test_odd_neighbor_count_rejected(self):
        with pytest.raises(GraphError):
            generators.watts_strogatz(20, 3, 0.1)

    def test_invalid_probability_rejected(self):
        with pytest.raises(GraphError):
            generators.watts_strogatz(20, 4, -0.1)


class TestKroneckerLike:
    def test_vertex_count_is_power_of_two(self):
        graph = generators.kronecker_like(8, 4, seed=0)
        assert graph.num_vertices == 256

    def test_edge_count_close_to_target(self):
        graph = generators.kronecker_like(8, 4, seed=0)
        assert graph.num_edges <= 4 * 256
        assert graph.num_edges >= 2 * 256

    def test_skewed_degree_distribution(self):
        graph = generators.kronecker_like(10, 8, seed=0)
        degrees = graph.out_degrees()
        assert degrees.max() > 10 * max(1.0, degrees.mean())

    def test_scale_bounds_enforced(self):
        with pytest.raises(GraphError):
            generators.kronecker_like(0, 4)
        with pytest.raises(GraphError):
            generators.kronecker_like(27, 4)
        with pytest.raises(GraphError):
            generators.kronecker_like(5, 0)


class TestSocialGraph:
    def test_directed_fraction_zero_is_symmetric(self):
        graph = generators.social_graph(200, 6, seed=1, directed_fraction=0.0)
        for u, v in graph.edges():
            assert graph.has_edge(v, u)

    def test_directed_fraction_one_breaks_some_symmetry(self):
        graph = generators.social_graph(200, 6, seed=1, directed_fraction=1.0)
        asymmetric = sum(1 for u, v in graph.edges() if not graph.has_edge(v, u))
        assert asymmetric > 0

    def test_parameter_validation(self):
        with pytest.raises(GraphError):
            generators.social_graph(3, 6)
        with pytest.raises(GraphError):
            generators.social_graph(100, 1)
        with pytest.raises(GraphError):
            generators.social_graph(100, 6, directed_fraction=2.0)

    def test_mean_degree_in_plausible_range(self):
        graph = generators.social_graph(500, 10, seed=2)
        mean_degree = graph.num_edges / graph.num_vertices
        assert 4 <= mean_degree <= 14


class TestExpectedEdges:
    def test_unknown_generator_rejected(self):
        with pytest.raises(GraphError):
            generators.expected_edges("nope", (1, 2))

    def test_erdos_renyi_expected(self):
        assert generators.expected_edges("erdos_renyi", (10, 0.5)) == 45

    def test_kronecker_expected(self):
        assert generators.expected_edges("kronecker_like", (8, 4)) == 1024
