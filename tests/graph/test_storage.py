"""Tests for the on-disk graph container (out-of-core storage tier)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.errors import ConfigurationError, GraphIOError
from repro.graph.digraph import CSR_ARRAY_NAMES, DiGraph
from repro.graph.generators import streamed_powerlaw_edge_chunks
from repro.graph.storage import (
    GRAPH_DATA_NAME,
    GRAPH_MANIFEST_NAME,
    build_graph_memmap,
    is_graph_container,
    load_graph_memmap,
    read_graph_manifest,
    save_graph_memmap,
)


def assert_same_graph(left: DiGraph, right: DiGraph) -> None:
    assert left.num_vertices == right.num_vertices
    assert left.num_edges == right.num_edges
    left_csr = left.csr_arrays()
    right_csr = right.csr_arrays()
    for name in CSR_ARRAY_NAMES:
        np.testing.assert_array_equal(left_csr[name], right_csr[name])


class TestRoundTrip:
    def test_save_then_load_is_bit_identical(self, tmp_path, random_graph):
        graph = random_graph(120, 4, 0.25, seed=7)
        container = save_graph_memmap(graph, tmp_path / "g")
        assert is_graph_container(container)
        loaded = load_graph_memmap(container)
        assert_same_graph(graph, loaded)
        assert loaded.memmap_path == str(container)

    def test_loaded_views_are_read_only(self, tmp_path, random_graph):
        graph = random_graph(40, 3, 0.2, seed=1)
        loaded = load_graph_memmap(save_graph_memmap(graph, tmp_path / "g"))
        for array in loaded.csr_arrays().values():
            assert not array.flags.writeable

    def test_empty_graph_round_trips(self, tmp_path):
        graph = DiGraph(5, np.array([], dtype=np.int64),
                        np.array([], dtype=np.int64))
        loaded = load_graph_memmap(save_graph_memmap(graph, tmp_path / "g"))
        assert loaded.num_vertices == 5
        assert loaded.num_edges == 0
        assert list(loaded.out_neighbors(0)) == []

    def test_zero_vertex_graph_round_trips(self, tmp_path):
        graph = DiGraph(0, np.array([], dtype=np.int64),
                        np.array([], dtype=np.int64))
        loaded = load_graph_memmap(save_graph_memmap(graph, tmp_path / "g"))
        assert loaded.num_vertices == 0
        assert loaded.num_edges == 0

    def test_max_degree_vertex_round_trips(self, tmp_path):
        # A hub adjacent to every other vertex, in both directions.
        n = 64
        others = np.arange(1, n, dtype=np.int64)
        src = np.concatenate([np.zeros(n - 1, dtype=np.int64), others])
        dst = np.concatenate([others, np.zeros(n - 1, dtype=np.int64)])
        graph = DiGraph(n, src, dst)
        loaded = load_graph_memmap(save_graph_memmap(graph, tmp_path / "g"))
        assert_same_graph(graph, loaded)
        np.testing.assert_array_equal(loaded.out_neighbors(0), others)

    def test_save_overwrites_existing_container(self, tmp_path, random_graph):
        first = random_graph(30, 2, 0.1, seed=2)
        second = random_graph(50, 3, 0.4, seed=3)
        path = tmp_path / "g"
        save_graph_memmap(first, path)
        save_graph_memmap(second, path)
        assert_same_graph(second, load_graph_memmap(path))

    def test_digraph_save_load_memmap_shims(self, tmp_path, random_graph):
        graph = random_graph(60, 3, 0.3, seed=9)
        graph.save_memmap(tmp_path / "g")
        assert_same_graph(graph, DiGraph.load_memmap(tmp_path / "g"))

    def test_verify_accepts_intact_container(self, tmp_path, random_graph):
        graph = random_graph(40, 3, 0.2, seed=4)
        container = save_graph_memmap(graph, tmp_path / "g")
        assert_same_graph(graph, load_graph_memmap(container, verify=True))


class TestCorruption:
    def test_flipped_byte_fails_verification(self, tmp_path, random_graph):
        graph = random_graph(40, 3, 0.2, seed=5)
        container = save_graph_memmap(graph, tmp_path / "g")
        data = container / GRAPH_DATA_NAME
        blob = bytearray(data.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        data.write_bytes(bytes(blob))
        with pytest.raises(GraphIOError, match="checksum"):
            load_graph_memmap(container, verify=True)

    def test_missing_manifest_rejected(self, tmp_path, random_graph):
        container = save_graph_memmap(random_graph(20, 2, 0.1, seed=6),
                                      tmp_path / "g")
        (container / GRAPH_MANIFEST_NAME).unlink()
        assert not is_graph_container(container)
        with pytest.raises(GraphIOError):
            load_graph_memmap(container)

    def test_truncated_manifest_rejected(self, tmp_path, random_graph):
        container = save_graph_memmap(random_graph(20, 2, 0.1, seed=6),
                                      tmp_path / "g")
        manifest = container / GRAPH_MANIFEST_NAME
        manifest.write_text(manifest.read_text()[:10])
        with pytest.raises(GraphIOError):
            read_graph_manifest(container)

    def test_wrong_format_version_rejected(self, tmp_path, random_graph):
        container = save_graph_memmap(random_graph(20, 2, 0.1, seed=6),
                                      tmp_path / "g")
        manifest = container / GRAPH_MANIFEST_NAME
        payload = json.loads(manifest.read_text())
        payload["format_version"] = 999
        manifest.write_text(json.dumps(payload))
        with pytest.raises(GraphIOError, match="version"):
            load_graph_memmap(container)

    def test_crash_leaves_no_half_valid_container(self, tmp_path):
        # A failing chunk iterator must not publish a container directory.
        def exploding_chunks():
            yield (np.array([0], dtype=np.int64),
                   np.array([1], dtype=np.int64))
            raise RuntimeError("generator died")

        with pytest.raises(RuntimeError):
            build_graph_memmap(4, exploding_chunks(), tmp_path / "g")
        assert not (tmp_path / "g").exists()


class TestStreamedBuilder:
    def test_builder_matches_in_ram_constructor(self, tmp_path):
        rng = np.random.default_rng(13)
        n, m = 200, 900
        src = rng.integers(0, n, m).astype(np.int64)
        dst = rng.integers(0, n, m).astype(np.int64)
        chunks = [(src[i:i + 97], dst[i:i + 97]) for i in range(0, m, 97)]
        stats = build_graph_memmap(n, iter(chunks), tmp_path / "built",
                                   chunk_edges=128)
        assert stats["num_edges"] == m
        built = load_graph_memmap(tmp_path / "built")
        save_graph_memmap(DiGraph(n, src, dst), tmp_path / "direct")
        direct = load_graph_memmap(tmp_path / "direct")
        assert_same_graph(direct, built)
        # Bit-identical at the file level too, not just view-equal.
        assert (tmp_path / "built" / GRAPH_DATA_NAME).read_bytes() == \
            (tmp_path / "direct" / GRAPH_DATA_NAME).read_bytes()

    def test_builder_with_powerlaw_stream(self, tmp_path):
        n, m = 500, 4000
        stats = build_graph_memmap(
            n, streamed_powerlaw_edge_chunks(n, m, seed=21, chunk_edges=512),
            tmp_path / "pl", chunk_edges=1024,
        )
        assert stats["num_edges"] == m
        graph = load_graph_memmap(tmp_path / "pl")
        assert graph.num_edges == m
        # Stream is deterministic: same parameters, same container bytes.
        build_graph_memmap(
            n, streamed_powerlaw_edge_chunks(n, m, seed=21, chunk_edges=512),
            tmp_path / "pl2", chunk_edges=1024,
        )
        assert (tmp_path / "pl" / GRAPH_DATA_NAME).read_bytes() == \
            (tmp_path / "pl2" / GRAPH_DATA_NAME).read_bytes()

    def test_builder_rejects_out_of_range_endpoints(self, tmp_path):
        chunks = [(np.array([0, 7], dtype=np.int64),
                   np.array([1, 2], dtype=np.int64))]
        with pytest.raises(GraphIOError, match="endpoints"):
            build_graph_memmap(4, iter(chunks), tmp_path / "g")

    def test_builder_rejects_mismatched_chunks(self, tmp_path):
        chunks = [(np.array([0, 1], dtype=np.int64),
                   np.array([1], dtype=np.int64))]
        with pytest.raises(GraphIOError, match="parallel"):
            build_graph_memmap(4, iter(chunks), tmp_path / "g")


class TestFromCsrArraysValidation:
    @staticmethod
    def _csr_kwargs(graph: DiGraph) -> dict[str, np.ndarray]:
        return {name: array.copy()
                for name, array in graph.csr_arrays().items()}

    def test_rejects_wrong_dtype(self, random_graph):
        graph = random_graph(20, 2, 0.1, seed=8)
        kwargs = self._csr_kwargs(graph)
        kwargs["edge_src"] = kwargs["edge_src"].astype(np.int32)
        with pytest.raises(ConfigurationError, match="int64"):
            DiGraph.from_csr_arrays(graph.num_vertices, **kwargs)

    def test_rejects_wrong_shape(self, random_graph):
        graph = random_graph(20, 2, 0.1, seed=8)
        kwargs = self._csr_kwargs(graph)
        kwargs["out_indices"] = kwargs["out_indices"].reshape(1, -1)
        with pytest.raises(ConfigurationError, match="one-dimensional"):
            DiGraph.from_csr_arrays(graph.num_vertices, **kwargs)

    def test_rejects_non_array(self, random_graph):
        graph = random_graph(20, 2, 0.1, seed=8)
        kwargs = self._csr_kwargs(graph)
        kwargs["in_order"] = list(kwargs["in_order"])
        with pytest.raises(ConfigurationError, match="numpy array"):
            DiGraph.from_csr_arrays(graph.num_vertices, **kwargs)

    def test_read_only_rejects_writable_views(self, random_graph):
        graph = random_graph(20, 2, 0.1, seed=8)
        kwargs = self._csr_kwargs(graph)
        with pytest.raises(ConfigurationError, match="read_only"):
            DiGraph.from_csr_arrays(graph.num_vertices, read_only=True,
                                    **kwargs)

    def test_read_only_accepts_frozen_views(self, random_graph):
        graph = random_graph(20, 2, 0.1, seed=8)
        kwargs = self._csr_kwargs(graph)
        for array in kwargs.values():
            array.flags.writeable = False
        rebuilt = DiGraph.from_csr_arrays(graph.num_vertices, read_only=True,
                                          **kwargs)
        assert_same_graph(graph, rebuilt)
