"""Unit tests for the graph builder."""

from __future__ import annotations

import pytest

from repro.errors import GraphBuildError
from repro.graph.builder import GraphBuilder


class TestBuilderBasics:
    def test_labels_are_interned_in_order(self):
        builder = GraphBuilder()
        builder.add_edge("alice", "bob")
        builder.add_edge("bob", "carol")
        assert builder.labels() == ["alice", "bob", "carol"]
        assert builder.vertex_id("carol") == 2

    def test_unknown_label_raises(self):
        builder = GraphBuilder()
        builder.add_edge("a", "b")
        with pytest.raises(GraphBuildError):
            builder.vertex_id("zzz")

    def test_self_loops_dropped_by_default(self):
        builder = GraphBuilder()
        builder.add_edge("a", "a")
        builder.add_edge("a", "b")
        graph = builder.build()
        assert graph.num_edges == 1

    def test_self_loops_kept_when_allowed(self):
        builder = GraphBuilder(allow_self_loops=True)
        builder.add_edge("a", "a")
        graph = builder.build()
        assert graph.num_edges == 1
        assert graph.has_edge(0, 0)

    def test_duplicate_edges_deduplicated(self):
        builder = GraphBuilder()
        builder.add_edge("a", "b")
        builder.add_edge("a", "b")
        assert builder.num_edges == 1

    def test_duplicates_kept_when_requested(self):
        builder = GraphBuilder(deduplicate=False)
        builder.add_edge("a", "b")
        builder.add_edge("a", "b")
        assert builder.num_edges == 2

    def test_add_undirected_edge(self):
        builder = GraphBuilder()
        builder.add_undirected_edge(1, 2)
        graph = builder.build()
        assert graph.has_edge(0, 1)
        assert graph.has_edge(1, 0)

    def test_add_edges_bulk(self):
        builder = GraphBuilder()
        builder.add_edges([(1, 2), (2, 3), (3, 1)])
        assert builder.num_vertices == 3
        assert builder.num_edges == 3

    def test_add_vertex_without_edges(self):
        builder = GraphBuilder()
        vid = builder.add_vertex("lonely")
        graph = builder.build()
        assert vid == 0
        assert graph.num_vertices == 1
        assert graph.num_edges == 0


class TestBuilderFinalization:
    def test_build_with_labels(self):
        builder = GraphBuilder()
        builder.add_edge("x", "y")
        graph, mapping = builder.build_with_labels()
        assert mapping == {"x": 0, "y": 1}
        assert graph.has_edge(0, 1)

    def test_builder_cannot_be_reused(self):
        builder = GraphBuilder()
        builder.add_edge("a", "b")
        builder.build()
        with pytest.raises(GraphBuildError):
            builder.add_edge("b", "c")
        with pytest.raises(GraphBuildError):
            builder.build()

    def test_empty_builder_builds_empty_graph(self):
        graph = GraphBuilder().build()
        assert graph.num_vertices == 0
        assert graph.num_edges == 0

    def test_mixed_label_types(self):
        builder = GraphBuilder()
        builder.add_edge(1, "a")
        builder.add_edge((2, 3), 1)
        graph = builder.build()
        assert graph.num_vertices == 3
        assert graph.num_edges == 2
