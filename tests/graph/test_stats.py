"""Unit tests for graph statistics (degree CDFs, clustering, etc.)."""

from __future__ import annotations

import pytest

from repro.graph.digraph import DiGraph
from repro.graph.stats import (
    average_clustering,
    clustering_coefficient,
    coverage_threshold,
    degree_assortativity,
    degree_coverage,
    in_degree_cdf,
    out_degree_cdf,
    reciprocity,
)


class TestDegreeCDF:
    def test_empty_graph(self):
        cdf = out_degree_cdf(DiGraph(0, [], []))
        assert cdf.degrees == ()
        assert cdf.fraction_at_most(10) == 1.0
        assert cdf.quantile(0.5) == 0

    def test_uniform_degrees(self, triangle_graph):
        cdf = out_degree_cdf(triangle_graph)
        assert cdf.degrees == (1,)
        assert cdf.cumulative == (1.0,)
        assert cdf.fraction_at_most(0) == 0.0
        assert cdf.fraction_at_most(1) == 1.0

    def test_star_graph_cdf(self, star_graph):
        cdf = out_degree_cdf(star_graph)
        # 10 leaves with degree 1, one hub with degree 10.
        assert cdf.fraction_at_most(1) == pytest.approx(10 / 11)
        assert cdf.fraction_at_most(10) == 1.0

    def test_quantile_monotone(self, small_social_graph):
        cdf = out_degree_cdf(small_social_graph)
        assert cdf.quantile(0.5) <= cdf.quantile(0.8) <= cdf.quantile(0.99)

    def test_quantile_rejects_bad_fraction(self, triangle_graph):
        with pytest.raises(ValueError):
            out_degree_cdf(triangle_graph).quantile(1.5)

    def test_cumulative_is_nondecreasing_and_ends_at_one(self, small_social_graph):
        cdf = out_degree_cdf(small_social_graph)
        values = list(cdf.cumulative)
        assert values == sorted(values)
        assert values[-1] == pytest.approx(1.0)

    def test_as_series_matches_components(self, small_social_graph):
        cdf = in_degree_cdf(small_social_graph)
        series = cdf.as_series()
        assert [d for d, _ in series] == list(cdf.degrees)


class TestCoverage:
    def test_degree_coverage_matches_cdf(self, small_social_graph):
        assert degree_coverage(small_social_graph, 5) == pytest.approx(
            out_degree_cdf(small_social_graph).fraction_at_most(5)
        )

    def test_coverage_threshold_reaches_requested_fraction(self, small_social_graph):
        threshold = coverage_threshold(small_social_graph, 0.8)
        assert degree_coverage(small_social_graph, threshold) >= 0.8

    def test_larger_threshold_covers_more(self, small_social_graph):
        assert degree_coverage(small_social_graph, 20) >= degree_coverage(
            small_social_graph, 5
        )


class TestClustering:
    def test_triangle_is_fully_clustered(self):
        graph = DiGraph(3, [0, 1, 2, 1, 2, 0], [1, 2, 0, 0, 1, 2])
        assert clustering_coefficient(graph, 0) == pytest.approx(1.0)

    def test_star_center_has_zero_clustering(self, star_graph):
        assert clustering_coefficient(star_graph, 0) == 0.0

    def test_low_degree_vertices_have_zero_clustering(self, triangle_graph):
        # Each vertex of the directed triangle has only one neighbor when the
        # graph is symmetrized per-vertex (out ∪ in gives two) — use a chain.
        chain = DiGraph(3, [0, 1], [1, 2])
        assert clustering_coefficient(chain, 0) == 0.0

    def test_average_clustering_bounds(self, small_social_graph):
        value = average_clustering(small_social_graph, sample_size=100, seed=0)
        assert 0.0 <= value <= 1.0

    def test_average_clustering_empty_graph(self):
        assert average_clustering(DiGraph(0, [], [])) == 0.0

    def test_sampled_clustering_close_to_full(self, small_social_graph):
        full = average_clustering(small_social_graph)
        sampled = average_clustering(small_social_graph, sample_size=200, seed=3)
        assert sampled == pytest.approx(full, abs=0.15)


class TestReciprocityAndAssortativity:
    def test_reciprocity_of_symmetric_graph(self, star_graph):
        assert reciprocity(star_graph) == pytest.approx(1.0)

    def test_reciprocity_of_one_way_graph(self, triangle_graph):
        assert reciprocity(triangle_graph) == 0.0

    def test_reciprocity_empty_graph(self):
        assert reciprocity(DiGraph(2, [], [])) == 0.0

    def test_assortativity_in_valid_range(self, small_social_graph):
        value = degree_assortativity(small_social_graph)
        assert -1.0 <= value <= 1.0

    def test_assortativity_degenerate_cases(self, triangle_graph):
        assert degree_assortativity(DiGraph(2, [0], [1])) == 0.0
        assert degree_assortativity(triangle_graph) == 0.0
