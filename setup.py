"""Setuptools shim enabling legacy editable installs on offline machines.

The project metadata lives in ``pyproject.toml``; this file only exists so
that ``pip install -e .`` keeps working in environments without the ``wheel``
package or network access (legacy ``setup.py develop`` path).
"""

from setuptools import setup

setup()
