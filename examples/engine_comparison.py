"""Engine comparison: the same SNAPLE run on the GAS and BSP/Pregel substrates.

The paper implements SNAPLE on GraphLab's gather-apply-scatter model and
names porting it to BSP engines (Giraph, Bagel) as future work.  This example
runs the identical configuration through three execution paths on the same
simulated 8-machine cluster and compares what each one costs:

* the GAS engine with PowerGraph's random vertex-cut,
* the GAS engine with the greedy (replication-minimizing) vertex-cut,
* the BSP/Pregel engine (hash edge-cut, explicit messages).

All three produce exactly the same predictions — only the data flow differs.

Run it with::

    python examples/engine_comparison.py
"""

from __future__ import annotations

from repro.eval.metrics import evaluate_predictions
from repro.eval.protocol import remove_random_edges
from repro.gas.cluster import TYPE_I, cluster_of
from repro.gas.partition import GreedyVertexCut
from repro.graph.datasets import load_dataset
from repro.snaple import SnapleBspPredictor, SnapleConfig, SnapleLinkPredictor


def main() -> None:
    graph = load_dataset("livejournal", scale=0.4)
    split = remove_random_edges(graph, seed=7)
    config = SnapleConfig.paper_default("linearSum", k_local=20, seed=7)
    cluster = cluster_of(TYPE_I, 8)
    print(f"graph: {graph.summary()}")
    print(f"cluster: {cluster.describe()}")
    print(f"configuration: {config.describe()}\n")

    gas_random = SnapleLinkPredictor(config).predict_gas(
        split.train_graph, cluster=cluster
    )
    gas_greedy = SnapleLinkPredictor(config).predict_gas(
        split.train_graph, cluster=cluster, partitioner=GreedyVertexCut()
    )
    bsp = SnapleBspPredictor(config).predict(split.train_graph, cluster=cluster)

    rows = [
        ("GAS, random vertex-cut", gas_random.predictions,
         gas_random.gas_result.metrics, gas_random.simulated_seconds),
        ("GAS, greedy vertex-cut", gas_greedy.predictions,
         gas_greedy.gas_result.metrics, gas_greedy.simulated_seconds),
        ("BSP (Pregel), hash edge-cut", bsp.predictions,
         bsp.bsp_result.metrics, bsp.simulated_seconds),
    ]
    print(f"{'execution path':<30} {'recall':>7} {'network MiB':>12} {'sim time':>9}")
    for name, predictions, metrics, simulated in rows:
        recall = evaluate_predictions(predictions, split).recall
        network = metrics.total_network_bytes / 1024**2
        print(f"{name:<30} {recall:>7.3f} {network:>12.2f} {simulated:>8.3f}s")

    assert gas_random.predictions == gas_greedy.predictions == bsp.predictions
    print("\nall three paths return identical predictions; only the data flow "
          "(and therefore the simulated cost) differs.")
    print("replication factor (random cut): "
          f"{gas_random.gas_result.partition.replication_factor():.2f}")
    print("replication factor (greedy cut): "
          f"{gas_greedy.gas_result.partition.replication_factor():.2f}")
    print("cut edge fraction (BSP hash):    "
          f"{bsp.bsp_result.partition.cut_fraction(split.train_graph):.2f}")


if __name__ == "__main__":
    main()
