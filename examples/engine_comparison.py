"""Engine comparison: the same SNAPLE run on the GAS and BSP/Pregel substrates.

The paper implements SNAPLE on GraphLab's gather-apply-scatter model and
names porting it to BSP engines (Giraph, Bagel) as future work.  This example
runs the identical configuration through three execution backends from the
:mod:`repro.runtime` registry on the same simulated 8-machine cluster and
compares what each one costs:

* the ``gas`` backend with PowerGraph's random vertex-cut,
* the ``gas`` backend with the greedy (replication-minimizing) vertex-cut,
* the ``bsp`` backend (hash edge-cut, explicit messages).

All three produce exactly the same predictions — only the data flow differs.
The normalized :class:`~repro.runtime.report.RunReport` makes the comparison
one loop: every backend reports network bytes and simulated seconds under
the same names.

Run it with::

    python examples/engine_comparison.py
"""

from __future__ import annotations

from repro.eval.metrics import evaluate_predictions
from repro.eval.protocol import remove_random_edges
from repro.gas.cluster import TYPE_I, cluster_of
from repro.gas.partition import GreedyVertexCut
from repro.graph.datasets import load_dataset
from repro.snaple import SnapleConfig, SnapleLinkPredictor


def main() -> None:
    graph = load_dataset("livejournal", scale=0.4)
    split = remove_random_edges(graph, seed=7)
    config = SnapleConfig.paper_default("linearSum", k_local=20, seed=7)
    cluster = cluster_of(TYPE_I, 8)
    predictor = SnapleLinkPredictor(config)
    print(f"graph: {graph.summary()}")
    print(f"cluster: {cluster.describe()}")
    print(f"configuration: {config.describe()}\n")

    runs = [
        ("GAS, random vertex-cut",
         predictor.predict(split.train_graph, backend="gas", cluster=cluster)),
        ("GAS, greedy vertex-cut",
         predictor.predict(split.train_graph, backend="gas", cluster=cluster,
                           partitioner=GreedyVertexCut())),
        ("BSP (Pregel), hash edge-cut",
         predictor.predict(split.train_graph, backend="bsp", cluster=cluster)),
    ]

    print(f"{'execution path':<30} {'recall':>7} {'network MiB':>12} {'sim time':>9}")
    for name, report in runs:
        recall = evaluate_predictions(report.predictions, split).recall
        network = report.network_bytes / 1024**2
        print(f"{name:<30} {recall:>7.3f} {network:>12.2f} "
              f"{report.simulated_seconds:>8.3f}s")

    gas_random, gas_greedy, bsp = (report for _, report in runs)
    assert gas_random.predictions == gas_greedy.predictions == bsp.predictions
    print("\nall three backends return identical predictions; only the data "
          "flow (and therefore the simulated cost) differs.")
    print("replication factor (random cut): "
          f"{gas_random.native.partition.replication_factor():.2f}")
    print("replication factor (greedy cut): "
          f"{gas_greedy.native.partition.replication_factor():.2f}")
    print("cut edge fraction (BSP hash):    "
          f"{bsp.native.partition.cut_fraction(split.train_graph):.2f}")


if __name__ == "__main__":
    main()
