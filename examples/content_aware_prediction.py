"""Content-aware link prediction: blending vertex profiles into SNAPLE's score.

The paper's scores are purely topological; Section 3.1 notes the raw
similarity can also include data attached to vertices (profiles, tags).  This
example attaches synthetic tag profiles to a social-graph analog and sweeps
the content weight of the hybrid raw similarity
``(1 - w)·Jaccard(Γ̂(u), Γ̂(v)) + w·Jaccard(tags(u), tags(v))``, showing that

* content that correlates with the graph (homophilous profiles) lifts recall
  at moderate weights,
* structure-free content degrades gracefully as its weight grows.

Run it with::

    python examples/content_aware_prediction.py
"""

from __future__ import annotations

from repro.eval.metrics import evaluate_predictions
from repro.eval.protocol import remove_random_edges
from repro.graph.attributes import generate_profiles
from repro.graph.datasets import load_dataset
from repro.snaple import ContentAwareLinkPredictor, ContentConfig, SnapleConfig


def main() -> None:
    graph = load_dataset("livejournal", scale=0.4)
    split = remove_random_edges(graph, seed=11)
    snaple = SnapleConfig.paper_default("linearSum", k_local=20, seed=11)
    print(f"graph: {graph.summary()}")
    print(f"base configuration: {snaple.describe()}\n")

    regimes = {
        "homophilous profiles (interests spread along edges)": 0.95,
        "random profiles (no correlation with the graph)": 0.0,
    }
    weights = (0.0, 0.25, 0.5, 0.75, 1.0)

    for label, homophily in regimes.items():
        profiles = generate_profiles(
            split.train_graph,
            homophily=homophily,
            tags_per_vertex=8,
            num_tags=max(50, graph.num_vertices // 50),
            seed=11,
        )
        print(f"{label}")
        print(f"  mean tags/vertex: {profiles.mean_profile_size():.1f}, "
              f"edge-vs-random tag overlap: {profiles.homophily(split.train_graph):+.3f}")
        for weight in weights:
            config = ContentConfig(
                snaple=snaple, content_weight=weight,
                profile_similarity_name="jaccard",
            )
            result = ContentAwareLinkPredictor(config).predict(
                split.train_graph, profiles
            )
            recall = evaluate_predictions(result.predictions, split).recall
            marker = "  <- paper's purely topological score" if weight == 0.0 else ""
            print(f"  content weight {weight:.2f}: recall {recall:.3f}{marker}")
        print()


if __name__ == "__main__":
    main()
