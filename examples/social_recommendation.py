"""Who-to-follow recommendation on a simulated cluster.

The paper's motivating scenario is a social service (think Twitter's
Who-to-Follow) that must recommend new connections over a graph too large for
one machine.  This example:

1. generates the livejournal dataset analog,
2. runs SNAPLE's three-step GAS program on a simulated 4-node type-II
   cluster (the Table 5 configuration) and on a single machine,
3. compares the two against the naive GAS BASELINE and reports recall,
   simulated execution time, network traffic and peak memory,
4. prints follow recommendations for a few users.

Run it with::

    python examples/social_recommendation.py
"""

from __future__ import annotations

from repro.baselines import GasBaselinePredictor
from repro.eval.metrics import evaluate_predictions
from repro.eval.protocol import remove_random_edges
from repro.gas.cluster import TYPE_II, cluster_of
from repro.graph.datasets import load_dataset
from repro.snaple import SnapleConfig, SnapleLinkPredictor


def describe_run(name: str, recall: float, seconds: float,
                 network_bytes: float, memory_bytes: float) -> None:
    print(
        f"  {name:28s} recall={recall:.3f}  time={seconds:7.2f}s  "
        f"net={network_bytes / 1024**2:7.2f} MiB  "
        f"peak_mem={memory_bytes / 1024**2:6.2f} MiB"
    )


def main() -> None:
    graph = load_dataset("livejournal", scale=0.5, seed=42)
    print(f"livejournal analog: {graph.summary()}")
    split = remove_random_edges(graph, seed=42)
    print(f"hidden follow edges: {split.num_removed}\n")

    cluster = cluster_of(TYPE_II, 4)           # the paper's 80-core setup
    single_machine = cluster_of(TYPE_II, 1)
    config = SnapleConfig.paper_default("linearSum", k_local=20, seed=42)

    print("Predictors (simulated cluster accounting):")

    baseline = GasBaselinePredictor().predict_gas(
        split.train_graph, cluster=cluster, enforce_memory=False
    )
    baseline_quality = evaluate_predictions(baseline.predictions, split)
    metrics = baseline.gas_result.metrics
    describe_run("BASELINE (4 × type-II)", baseline_quality.recall,
                 baseline.simulated_seconds, metrics.total_network_bytes,
                 metrics.peak_machine_memory_bytes)

    snaple_cluster = SnapleLinkPredictor(config).predict(
        split.train_graph, backend="gas", cluster=cluster, enforce_memory=False
    )
    cluster_quality = evaluate_predictions(snaple_cluster.predictions, split)
    describe_run("SNAPLE (4 × type-II)", cluster_quality.recall,
                 snaple_cluster.simulated_seconds, snaple_cluster.network_bytes,
                 snaple_cluster.peak_memory_bytes)

    snaple_single = SnapleLinkPredictor(config).predict(
        split.train_graph, backend="gas", cluster=single_machine,
        enforce_memory=False
    )
    single_quality = evaluate_predictions(snaple_single.predictions, split)
    describe_run("SNAPLE (1 × type-II)", single_quality.recall,
                 snaple_single.simulated_seconds, snaple_single.network_bytes,
                 snaple_single.peak_memory_bytes)

    speedup = baseline.simulated_seconds / snaple_cluster.simulated_seconds
    gain = cluster_quality.recall / max(baseline_quality.recall, 1e-9)
    print(f"\nSNAPLE vs BASELINE on the cluster: {gain:.1f}× recall, "
          f"{speedup:.1f}× faster (simulated)")

    print("\nWho-to-follow recommendations (sample users):")
    shown = 0
    for user, targets in snaple_cluster.predictions.items():
        if targets and shown < 5:
            print(f"  user {user:5d}: follow {targets}")
            shown += 1


if __name__ == "__main__":
    main()
