"""Exploring SNAPLE's scoring design space (Table 3 of the paper).

SNAPLE's score is the composition of a raw similarity, a path combinator
``⊗`` and a path aggregator ``⊕``.  This example sweeps all eleven Table 3
configurations and two klocal budgets on the pokec analog and prints a small
league table, illustrating the guidance from the paper's Section 5.7:

* the Sum aggregator benefits from a larger klocal (more paths, better
  popularity signal),
* the Mean/Geom aggregators are competitive at small klocal but degrade as
  more low-similarity paths are averaged in.

Run it with::

    python examples/scoring_design_space.py
"""

from __future__ import annotations

from repro.eval.metrics import evaluate_predictions
from repro.eval.protocol import remove_random_edges
from repro.graph.datasets import load_dataset
from repro.snaple import SnapleConfig, SnapleLinkPredictor, paper_score_names


def main() -> None:
    graph = load_dataset("pokec", scale=0.5, seed=42)
    print(f"pokec analog: {graph.summary()}\n")
    split = remove_random_edges(graph, seed=42)

    rows: list[tuple[str, int, float, float]] = []
    for score_name in paper_score_names():
        for k_local in (5, 40):
            config = SnapleConfig.paper_default(score_name, k_local=k_local, seed=42)
            result = SnapleLinkPredictor(config).predict(split.train_graph,
                                                         backend="local")
            quality = evaluate_predictions(result.predictions, split)
            rows.append((score_name, k_local, quality.recall,
                         result.wall_clock_seconds))

    rows.sort(key=lambda row: -row[2])
    print(f"{'score':12s} {'klocal':>6s} {'recall':>8s} {'time(s)':>8s}")
    print("-" * 40)
    for score_name, k_local, recall, seconds in rows:
        print(f"{score_name:12s} {k_local:6d} {recall:8.3f} {seconds:8.2f}")

    best = rows[0]
    print(f"\nbest configuration on this graph: {best[0]} with klocal={best[1]} "
          f"(recall {best[2]:.3f})")
    print("paper guidance: linearSum with a large klocal for best recall; "
          "Mean aggregators with small klocal under tight time budgets.")


if __name__ == "__main__":
    main()
