"""Bring-your-own-graph pipeline: from an edge-list file to recommendations.

This example shows the workflow for a user with their own data: write (or
obtain) a SNAP-style edge list, load it, compare SNAPLE against the classic
standalone predictors and the random-walk baseline on the same held-out
edges, and export the predicted edges back to a file.

Run it with::

    python examples/custom_graph_pipeline.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.baselines import RandomWalkConfig, RandomWalkPPRPredictor, TopologicalPredictor
from repro.eval.metrics import evaluate_predictions
from repro.eval.protocol import remove_random_edges
from repro.graph.generators import social_graph
from repro.graph.io import read_edge_list, write_edge_list
from repro.snaple import SnapleConfig, SnapleLinkPredictor


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="snaple-example-"))
    edge_file = workdir / "my_graph.tsv"

    # Stand-in for "your" data: a directed social graph written to disk in
    # the whitespace-separated format used by the paper's datasets.
    raw_graph = social_graph(3_000, 8, clustering=0.5, seed=3)
    write_edge_list(edge_file, raw_graph.edges(),
                    header="example social graph (source<TAB>target)")
    print(f"wrote {raw_graph.num_edges} edges to {edge_file}")

    # Load it back (sparse ids are remapped densely) and build the split.
    graph = read_edge_list(edge_file)
    split = remove_random_edges(graph, seed=3)
    print(f"loaded graph: {graph.summary()}; hidden edges: {split.num_removed}\n")

    # Compare three predictors on the same held-out edges.
    print(f"{'predictor':32s} {'recall':>8s} {'time(s)':>8s}")
    print("-" * 52)

    snaple = SnapleLinkPredictor(
        SnapleConfig.paper_default("linearSum", k_local=20, seed=3)
    ).predict(split.train_graph, backend="local")
    quality = evaluate_predictions(snaple.predictions, split)
    print(f"{'SNAPLE linearSum (klocal=20)':32s} {quality.recall:8.3f} "
          f"{snaple.wall_clock_seconds:8.2f}")

    classic = TopologicalPredictor("jaccard", k=5).predict(split.train_graph)
    quality = evaluate_predictions(classic.predictions, split)
    print(f"{'classic 2-hop Jaccard':32s} {quality.recall:8.3f} "
          f"{classic.wall_clock_seconds:8.2f}")

    walker = RandomWalkPPRPredictor(
        RandomWalkConfig(num_walks=100, depth=3, seed=3)
    ).predict(split.train_graph)
    quality = evaluate_predictions(walker.predictions, split)
    print(f"{'random-walk PPR (w=100, d=3)':32s} {quality.recall:8.3f} "
          f"{walker.wall_clock_seconds:8.2f}")

    # Export SNAPLE's predicted edges for downstream use.
    output_file = workdir / "predicted_edges.tsv"
    write_edge_list(output_file, sorted(snaple.predicted_edges()),
                    header="predicted (source<TAB>recommended target)")
    print(f"\nexported {len(snaple.predicted_edges())} predicted edges "
          f"to {output_file}")


if __name__ == "__main__":
    main()
