"""Quickstart: predict missing links on a small social graph with SNAPLE.

This example walks through the full workflow a downstream user would follow:

1. build (or load) a directed graph,
2. hide one outgoing edge per vertex to create a ground truth (the paper's
   evaluation protocol),
3. run the SNAPLE link predictor with the paper's default configuration,
4. measure recall against the hidden edges and inspect a few predictions.

Run it with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.eval.metrics import evaluate_predictions
from repro.eval.protocol import remove_random_edges
from repro.graph.generators import powerlaw_cluster
from repro.snaple import SnapleConfig, SnapleLinkPredictor


def main() -> None:
    # 1. A clustered power-law graph stands in for a small social network.
    #    Any DiGraph works here — see repro.graph.read_edge_list to load your
    #    own edge-list file instead.
    graph = powerlaw_cluster(num_vertices=2_000, edges_per_vertex=4,
                             triangle_probability=0.5, seed=1)
    print(f"graph: {graph.summary()}")

    # 2. Hide one outgoing edge of every vertex with more than 3 neighbors.
    split = remove_random_edges(graph, edges_per_vertex=1, min_degree=3, seed=1)
    print(f"hidden edges: {split.num_removed}")

    # 3. SNAPLE with the paper's defaults: Jaccard + linear combinator
    #    (α = 0.9) + Sum aggregator, thrΓ = 200, klocal = 20, k = 5.
    config = SnapleConfig.paper_default("linearSum", k_local=20)
    predictor = SnapleLinkPredictor(config)
    result = predictor.predict(split.train_graph, backend="local")
    print(f"configuration: {config.describe()}")
    print(f"prediction time: {result.wall_clock_seconds:.2f}s")

    # 4. Recall = fraction of hidden edges recovered in the top-k answers.
    report = evaluate_predictions(result.predictions, split)
    print(f"quality: {report.describe()}")

    print("\nsample predictions (vertex -> recommended new neighbors):")
    shown = 0
    for vertex, targets in result.predictions.items():
        if targets and shown < 5:
            hidden = split.removed_targets(vertex)
            hits = [f"{t}*" if t in hidden else str(t) for t in targets]
            print(f"  {vertex:5d} -> {', '.join(hits)}   (* = hidden edge recovered)")
            shown += 1


if __name__ == "__main__":
    main()
