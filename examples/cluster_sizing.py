"""Cluster-sizing study: how many machines does a target graph need?

The paper's scalability evaluation (Figure 5, Section 5.4) sweeps cluster
sizes and graph sizes to show SNAPLE scales linearly with edges.  This
example uses the simulated cost model to answer the practical question a
deployment engineer would ask: *given a graph and a time budget, how many
type-I or type-II machines do I need, and when does the naive BASELINE stop
fitting in memory?*

Run it with::

    python examples/cluster_sizing.py
"""

from __future__ import annotations

from repro.baselines import GasBaselinePredictor
from repro.errors import ResourceExhaustedError
from repro.eval.protocol import remove_random_edges
from repro.gas.cluster import TYPE_I, TYPE_II, ClusterConfig, MachineSpec, cluster_of
from repro.graph.datasets import load_dataset
from repro.snaple import SnapleConfig, SnapleLinkPredictor


def snaple_time(graph, config, cluster) -> float:
    report = SnapleLinkPredictor(config).predict(
        graph, backend="gas", cluster=cluster, enforce_memory=False
    )
    return report.simulated_seconds


def main() -> None:
    graph = load_dataset("orkut", scale=0.5, seed=42)
    print(f"orkut analog: {graph.summary()}\n")
    train = remove_random_edges(graph, seed=42).train_graph
    config = SnapleConfig.paper_default("linearSum", k_local=40, seed=42)

    print("SNAPLE simulated execution time by cluster size:")
    print(f"  {'cluster':>16s} {'cores':>6s} {'time(s)':>9s}")
    sweeps: list[tuple[MachineSpec, int]] = [
        (TYPE_I, 1), (TYPE_I, 4), (TYPE_I, 8), (TYPE_I, 16), (TYPE_I, 32),
        (TYPE_II, 1), (TYPE_II, 4), (TYPE_II, 8),
    ]
    results: dict[str, float] = {}
    for machine, count in sweeps:
        cluster = cluster_of(machine, count)
        seconds = snaple_time(train, config, cluster)
        results[cluster.name] = seconds
        print(f"  {cluster.name:>16s} {cluster.total_cores:6d} {seconds:9.2f}")

    print("\nDiminishing returns: speedup of each step up in cluster size")
    type_i_sizes = [1, 4, 8, 16, 32]
    for before, after in zip(type_i_sizes, type_i_sizes[1:]):
        speedup = results[f"{before}xtype-I"] / results[f"{after}xtype-I"]
        print(f"  {before:2d} -> {after:2d} type-I machines: {speedup:.2f}×")

    print("\nBASELINE memory behaviour on a memory-constrained cluster "
          "(the paper's resource-exhaustion failure):")
    # First measure the peak per-machine footprint of both approaches, then
    # pick a capacity that sits between them: the naive BASELINE no longer
    # fits, while SNAPLE's compact per-vertex state still does.
    relaxed = cluster_of(TYPE_II, 4)
    baseline_peak = GasBaselinePredictor().predict_gas(
        train, cluster=relaxed, enforce_memory=False
    ).gas_result.metrics.peak_machine_memory_bytes
    snaple_peak = SnapleLinkPredictor(config).predict(
        train, backend="gas", cluster=relaxed, enforce_memory=False
    ).peak_memory_bytes
    print(f"  peak per-machine memory: BASELINE {baseline_peak / 1024**2:.2f} MiB, "
          f"SNAPLE {snaple_peak / 1024**2:.2f} MiB")
    capacity = (baseline_peak + snaple_peak) / 2
    constrained = ClusterConfig(machine=TYPE_II, num_machines=4,
                                memory_scale=capacity / TYPE_II.memory_bytes)
    try:
        GasBaselinePredictor().predict_gas(train, cluster=constrained)
        print("  BASELINE fits (unexpected at this capacity)")
    except ResourceExhaustedError as exc:
        print(f"  BASELINE fails: {exc}")
    snaple_run = SnapleLinkPredictor(config).predict(train, backend="gas",
                                                     cluster=constrained)
    print(f"  SNAPLE completes in {snaple_run.simulated_seconds:.2f}s "
          "on the same constrained cluster")


if __name__ == "__main__":
    main()
