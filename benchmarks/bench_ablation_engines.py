"""Benchmark regenerating the GAS-versus-BSP engine ablation."""

from __future__ import annotations

from conftest import BENCH_SCALE, BENCH_SEED, run_once

from repro.eval.experiments.ablation_engines import run_ablation_engines


def test_ablation_engines(benchmark, save_result):
    """Traffic, simulated time and recall of SNAPLE on GAS vs BSP."""
    result = run_once(
        benchmark,
        run_ablation_engines,
        scale=BENCH_SCALE,
        seed=BENCH_SEED,
    )
    save_result("ablation_engines", result.render())

    greedy = result.row("livejournal", "GAS (greedy cut)")
    random_cut = result.row("livejournal", "GAS (random cut)")
    bsp = result.row("livejournal", "BSP (hash cut)")
    # The algorithm is identical on both substrates: recall must match.
    assert greedy.recall == random_cut.recall == bsp.recall
    # The GAS formulation's traffic advantage materializes through the
    # replication-minimizing vertex-cut; the message-passing port sits in the
    # same order of magnitude as random-vertex-cut GAS.
    assert greedy.network_mebibytes < bsp.network_mebibytes
    assert random_cut.network_mebibytes / 5 < bsp.network_mebibytes
    assert bsp.network_mebibytes < random_cut.network_mebibytes * 5
    # Pregel needs one extra superstep (in-neighbor registration).
    assert bsp.supersteps == random_cut.supersteps + 1
