"""Shared helpers for the benchmark harness.

Each benchmark regenerates one table or figure of the paper at a reduced but
non-trivial dataset scale, asserts the qualitative shape the paper reports,
and writes the rendered rows/series to ``benchmarks/results/`` so the numbers
can be copied into EXPERIMENTS.md and compared against the paper.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

#: Dataset scale used by the benchmark harness.  Chosen so the whole harness
#: finishes in minutes on a laptop while keeping every dataset analog large
#: enough for the paper's qualitative shapes to be visible.
BENCH_SCALE = 0.5

#: Seed shared by all benchmarks (dataset generation + removal protocol).
BENCH_SEED = 42


def peak_rss_bytes() -> int:
    """High-water RSS of this process and its reaped children, in bytes.

    ``ru_maxrss`` is a lifetime high-water mark, so within one pytest
    process the numbers are only comparable *upward* — a benchmark that
    needs an isolated measurement must fork a fresh process (see
    ``python -m repro.graph.storage generate``, which prints exactly this
    value for its own run).  Including ``RUSAGE_CHILDREN`` matters because
    the parallel executor does its heavy lifting in worker processes.
    """
    import resource

    scale = 1024  # Linux reports KiB
    self_rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    child_rss = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
    return max(self_rss, child_rss) * scale


@pytest.fixture(scope="session")
def bench_graph():
    """Session-cached factory for the benchmarks' power-law graphs.

    Every benchmark used to call ``powerlaw_cluster`` itself with its own
    copy of the parameters; this factory is the single place those graphs
    are built, and identical ``(num_vertices, m, p, seed)`` requests across
    benchmarks share one instance instead of regenerating it.
    """
    from repro.graph.generators import powerlaw_cluster

    cache: dict[tuple[int, int, float, int], object] = {}

    def _build(num_vertices: int, edges_per_vertex: int = 3,
               triangle_probability: float = 0.2, *,
               seed: int = BENCH_SEED):
        key = (num_vertices, edges_per_vertex, triangle_probability, seed)
        if key not in cache:
            cache[key] = powerlaw_cluster(
                num_vertices, edges_per_vertex, triangle_probability,
                seed=seed,
            )
        return cache[key]

    return _build


def pytest_collection_modifyitems(items) -> None:
    """Mark every benchmark test ``bench`` (registered in pyproject.toml)."""
    for item in items:
        item.add_marker(pytest.mark.bench)


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """Directory where rendered tables/series are written."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def save_result(results_dir):
    """Callable that persists a rendered experiment to ``results/<name>.txt``."""

    def _save(name: str, rendered: str) -> Path:
        path = results_dir / f"{name}.txt"
        path.write_text(rendered + "\n", encoding="utf-8")
        return path

    return _save


@pytest.fixture(scope="session")
def save_json(results_dir):
    """Callable that persists a machine-readable payload to ``results/<name>.json``.

    This is how the repo records its perf trajectory: benchmarks write a
    JSON record (e.g. ``BENCH_parallel.json``) that later sessions can diff
    against instead of eyeballing rendered tables.
    """

    def _save(name: str, payload) -> Path:
        path = results_dir / f"{name}.json"
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                        encoding="utf-8")
        return path

    return _save


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under pytest-benchmark timing.

    The experiments are deterministic and expensive, so a single round is
    both sufficient and necessary to keep the harness fast.
    """
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
