"""Benchmark: reference vs vectorized SNAPLE scoring kernel, recorded to JSON.

Runs the same SNAPLE configuration through the ``local`` backend in
``mode="reference"`` (scalar dict/loop implementation) and
``mode="vectorized"`` (the CSR-native array kernel of
:mod:`repro.snaple.kernel`) on clustered power-law graphs of 1k and 10k
vertices, verifies the two modes are prediction- and score-identical (a
benchmark that changed the answer would be worthless), and writes the wall
clock trajectory to ``results/BENCH_scoring.json``.

The recorded numbers are end-to-end ``predict`` calls: graph-global
preparation, scoring, and report construction.  The vectorized mode returns
its candidate score maps as a lazy view (Algorithm 2 treats them as an
apply-phase temporary), so the payload also records
``materialize_scores_seconds`` — the extra cost of forcing every per-vertex
score dict — and ``speedup_with_scores_materialized``, the conservative
ratio that charges the vectorized mode for that materialization up front.

Environment knobs for CI:

* ``SNAPLE_BENCH_ITERATIONS`` — timing iterations per (size, mode)
  (default 3; CI smoke uses 1);
* ``SNAPLE_BENCH_SCORING_VERTICES`` — comma-separated graph sizes
  (default ``1000,10000``).

The largest size acts as the regression gate: the benchmark *fails* if the
vectorized mode is slower than the reference there.
"""

from __future__ import annotations

import os
import platform
import time

from repro.snaple.config import SnapleConfig
from repro.snaple.predictor import SnapleLinkPredictor

from conftest import BENCH_SEED

#: Generator parameters: a clustered power-law graph (m=5 attachment edges,
#: p=0.5 triangle closure) — the regime the paper's social graphs live in,
#: where most 2-hop paths close triangles.
BENCH_EDGES_PER_VERTEX = 5
BENCH_TRIANGLE_PROBABILITY = 0.5
BENCH_K_LOCAL = 20


def _sizes() -> list[int]:
    raw = os.environ.get("SNAPLE_BENCH_SCORING_VERTICES", "1000,10000")
    return [int(value) for value in raw.split(",") if value]


def _timed_predict(predictor, graph, mode, iterations):
    """Best-of-``iterations`` wall clock plus the last run's report."""
    best = float("inf")
    report = None
    for _ in range(iterations):
        start = time.perf_counter()
        report = predictor.predict(graph, backend="local", mode=mode)
        best = min(best, time.perf_counter() - start)
    return best, report


def test_bench_scoring_kernel(save_json, save_result, bench_graph):
    iterations = int(os.environ.get("SNAPLE_BENCH_ITERATIONS", "3"))
    sizes = _sizes()
    config = SnapleConfig.paper_default(seed=BENCH_SEED, k_local=BENCH_K_LOCAL)
    predictor = SnapleLinkPredictor(config)

    runs = []
    for num_vertices in sizes:
        graph = bench_graph(
            num_vertices, BENCH_EDGES_PER_VERTEX, BENCH_TRIANGLE_PROBABILITY,
            seed=BENCH_SEED,
        )
        reference_seconds, reference = _timed_predict(
            predictor, graph, "reference", iterations
        )
        vectorized_seconds, vectorized = _timed_predict(
            predictor, graph, "vectorized", iterations
        )
        # Time score materialization on a fresh (cold) lazy view — the
        # parity check below would otherwise warm its cache.
        start = time.perf_counter()
        materialized = dict(vectorized.scores)
        materialize_seconds = time.perf_counter() - start
        assert len(materialized) == graph.num_vertices

        # Parity guard: same predictions, same scores, kernel actually ran.
        assert vectorized.extra["kernel_vectorized"] == 1.0
        assert vectorized.predictions == reference.predictions
        assert vectorized.scores == reference.scores

        runs.append({
            "num_vertices": graph.num_vertices,
            "num_edges": graph.num_edges,
            "reference_seconds": reference_seconds,
            "vectorized_seconds": vectorized_seconds,
            "materialize_scores_seconds": materialize_seconds,
            "speedup": reference_seconds / vectorized_seconds,
            "speedup_with_scores_materialized": (
                reference_seconds / (vectorized_seconds + materialize_seconds)
            ),
            "score_entries": sum(
                len(by_candidate) for by_candidate in materialized.values()
            ),
        })

    # Regression gate on the largest graph: vectorized must not be slower.
    largest = runs[-1]
    assert largest["vectorized_seconds"] <= largest["reference_seconds"], (
        f"vectorized mode slower than reference on the "
        f"{largest['num_vertices']}-vertex graph: "
        f"{largest['vectorized_seconds']:.3f}s vs "
        f"{largest['reference_seconds']:.3f}s"
    )

    payload = {
        "benchmark": "scoring_kernel",
        "backend": "local",
        "graph": {
            "generator": "powerlaw_cluster",
            "edges_per_vertex": BENCH_EDGES_PER_VERTEX,
            "triangle_probability": BENCH_TRIANGLE_PROBABILITY,
            "seed": BENCH_SEED,
        },
        "config": config.describe(),
        "iterations": iterations,
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "runs": runs,
        "note": (
            "end-to-end predict() wall clock (prepare + scoring + report); "
            "vectorized mode defers score-map materialization, recorded "
            "separately as materialize_scores_seconds"
        ),
    }
    path = save_json("BENCH_scoring", payload)
    assert path.exists()

    lines = [
        "Scoring kernel: reference vs vectorized local mode "
        f"(powerlaw_cluster m={BENCH_EDGES_PER_VERTEX} "
        f"p={BENCH_TRIANGLE_PROBABILITY}, klocal={BENCH_K_LOCAL}, "
        f"best of {iterations})",
    ]
    for run in runs:
        lines.append(
            f"  |V|={run['num_vertices']:>6}  "
            f"reference {run['reference_seconds'] * 1000:8.1f} ms   "
            f"vectorized {run['vectorized_seconds'] * 1000:7.1f} ms   "
            f"speedup x{run['speedup']:.2f} "
            f"(x{run['speedup_with_scores_materialized']:.2f} with scores "
            f"materialized)"
        )
    save_result("BENCH_scoring", "\n".join(lines))
