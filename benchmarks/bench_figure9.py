"""Benchmark regenerating Figure 9 (recall vs number of returned predictions k)."""

from __future__ import annotations

from conftest import BENCH_SEED, run_once

from repro.eval.experiments.figure9 import run_figure9


def test_figure9(benchmark, save_result):
    """Recall as k grows from 5 to 20 on livejournal and pokec."""
    result = run_once(
        benchmark,
        run_figure9,
        scale=0.4,
        seed=BENCH_SEED,
    )
    save_result("figure9", result.render())

    for dataset in ("livejournal", "pokec"):
        for score in ("linearSum", "counter", "PPR"):
            # Paper shape: recall increases substantially with k.
            assert result.recall(dataset, score, 20) > result.recall(dataset, score, 5)
            # And is monotone (within noise) across the swept values.
            values = [result.recall(dataset, score, k) for k in (5, 10, 15, 20)]
            assert all(b >= a - 0.01 for a, b in zip(values, values[1:]))
