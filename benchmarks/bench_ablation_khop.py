"""Benchmark regenerating the path-length (K-hop) ablation."""

from __future__ import annotations

from conftest import BENCH_SCALE, BENCH_SEED, run_once

from repro.eval.experiments.ablation_khop import run_ablation_khop


def test_ablation_khop(benchmark, save_result):
    """Recall and explored paths for K = 2 versus K = 3."""
    result = run_once(
        benchmark,
        run_ablation_khop,
        scale=BENCH_SCALE,
        seed=BENCH_SEED,
    )
    save_result("ablation_khop", result.render())

    for k_local in (5, 10):
        two = result.row("livejournal", 2, k_local)
        three = result.row("livejournal", 3, k_local)
        # Longer paths blow up the explored candidate space ...
        assert three.explored_paths > 3 * two.explored_paths
        # ... without improving recall on clustered graphs, which is the
        # justification for the paper's K = 2 restriction.
        assert three.recall <= two.recall * 1.1
        assert three.recall > 0.3 * two.recall
        assert two.recall > 0.05
