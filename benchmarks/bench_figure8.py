"""Benchmark regenerating Figure 8 (recall vs time per scoring configuration)."""

from __future__ import annotations

from conftest import BENCH_SEED, run_once

from repro.eval.experiments.figure8 import run_figure8


def test_figure8(benchmark, save_result):
    """Recall/time trade-off of all Table 3 scores across klocal values."""
    result = run_once(
        benchmark,
        run_figure8,
        scale=0.4,
        seed=BENCH_SEED,
        k_locals=(5, 20, 80),
    )
    save_result("figure8", result.render())

    for dataset in ("livejournal", "twitter-rv"):
        # Paper shape: the Sum aggregator family improves with klocal.
        linear_sum = dict(result.recall_series(dataset, "linearSum"))
        assert linear_sum[80] >= linear_sum[5] - 0.01
        # Paper shape: the Geom family degrades (or at best stagnates) as
        # klocal grows because low-similarity paths zero out the product.
        linear_geom = dict(result.recall_series(dataset, "linearGeom"))
        assert linear_geom[80] <= linear_geom[5] + 0.05
        # Paper shape: at large klocal the Sum family beats the Geom family.
        assert linear_sum[80] >= linear_geom[80]
