"""Benchmark regenerating Figure 5 (scalability with graph size and cores)."""

from __future__ import annotations

from conftest import BENCH_SCALE, BENCH_SEED, run_once

from repro.eval.experiments.figure5 import run_figure5


def test_figure5(benchmark, save_result):
    """Execution time vs edge count for type-I/type-II clusters, klocal 40/80."""
    result = run_once(
        benchmark,
        run_figure5,
        scale=BENCH_SCALE,
        seed=BENCH_SEED,
        k_locals=(40, 80),
        enforce_memory=False,
    )
    save_result("figure5", result.render())

    for (machine, k_local), report in result.panels.items():
        for label, points in report.as_dict().items():
            ordered = [seconds for _edges, seconds in sorted(points)]
            # Paper shape: time grows with the number of edges.
            assert ordered == sorted(ordered), (machine, k_local, label)

    # Paper shape: more cores are at least as fast on the largest dataset.
    panel = result.panel("type-I", 40).as_dict()
    largest_edges = max(x for x, _y in panel["64 cores"])
    time_64 = dict(panel["64 cores"])[largest_edges]
    time_256 = dict(panel["256 cores"])[largest_edges]
    assert time_256 <= time_64

    # Paper shape: doubling klocal increases execution time.
    forty = dict(result.panel("type-I", 40).as_dict()["128 cores"])
    eighty = dict(result.panel("type-I", 80).as_dict()["128 cores"])
    assert eighty[largest_edges] > forty[largest_edges]
