"""Benchmark regenerating the content-weight ablation."""

from __future__ import annotations

from conftest import BENCH_SCALE, BENCH_SEED, run_once

from repro.eval.experiments.ablation_content import run_ablation_content


def test_ablation_content(benchmark, save_result):
    """Recall of the hybrid topology+content similarity versus content weight."""
    result = run_once(
        benchmark,
        run_ablation_content,
        scale=BENCH_SCALE,
        seed=BENCH_SEED,
    )
    save_result("ablation_content", result.render())

    # With content_weight = 0 the profiles are ignored entirely, so the two
    # regimes coincide with the purely topological predictor.
    topo = result.recall("homophilous profiles", 0.0)
    assert result.recall("random profiles", 0.0) == topo
    assert topo > 0.05
    # Structure-free content degrades recall as its weight grows; content that
    # correlates with the graph stays competitive (and typically helps at
    # moderate weights).
    assert result.recall("random profiles", 1.0) < topo
    assert result.recall("homophilous profiles", 1.0) > result.recall(
        "random profiles", 1.0
    )
    assert result.recall("homophilous profiles", 0.25) > 0.9 * topo
