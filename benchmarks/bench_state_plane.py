"""Benchmark: columnar state plane vs the legacy dict path, recorded to JSON.

Runs the same SNAPLE configuration on the ``gas`` backend with 4 worker
processes twice — once on the columnar :class:`~repro.runtime.state.StateStore`
path (the default) and once forced onto the legacy per-vertex-dict path via
``SNAPLE_DICT_STATE=1`` — verifies the two runs are prediction-identical,
and writes the trajectory to ``results/BENCH_state.json``.

Acceptance gates (the state-plane refactor's contract):

* the columnar path must never be slower than the dict path;
* at the acceptance scale (a 10k-vertex clustered power-law graph) it must
  be at least 2x faster end-to-end.

Environment knobs for CI:

* ``SNAPLE_BENCH_ITERATIONS`` — timing iterations per path (default 3; the
  CI smoke uses 1);
* ``SNAPLE_BENCH_VERTICES`` — graph size (default 10000; the 2x gate only
  applies at >= 10000 vertices, smaller sizes gate at parity).
"""

from __future__ import annotations

import os
import platform
import time

from repro.snaple.config import SnapleConfig
from repro.snaple.predictor import SnapleLinkPredictor

from conftest import BENCH_SEED, peak_rss_bytes

#: The acceptance configuration: gas backend, 4 shared-nothing workers.
WORKERS = 4

#: Graph size at (and above) which the 2x end-to-end gate applies.
ACCEPTANCE_VERTICES = 10_000


def _timed_predict(predictor, graph, iterations: int, *, dict_state: bool,
                   monkeypatch):
    """Best-of-``iterations`` wall clock plus the last run's report."""
    if dict_state:
        monkeypatch.setenv("SNAPLE_DICT_STATE", "1")
    else:
        monkeypatch.delenv("SNAPLE_DICT_STATE", raising=False)
    best = float("inf")
    report = None
    for _ in range(iterations):
        start = time.perf_counter()
        report = predictor.predict(graph, backend="gas", workers=WORKERS)
        best = min(best, time.perf_counter() - start)
    return best, report


def test_bench_state_plane(save_json, save_result, monkeypatch, bench_graph):
    iterations = int(os.environ.get("SNAPLE_BENCH_ITERATIONS", "3"))
    num_vertices = int(os.environ.get("SNAPLE_BENCH_VERTICES",
                                      str(ACCEPTANCE_VERTICES)))
    graph = bench_graph(num_vertices, 3, 0.2, seed=BENCH_SEED)
    config = SnapleConfig.paper_default(seed=BENCH_SEED, k_local=10)
    predictor = SnapleLinkPredictor(config)

    columnar_seconds, columnar_report = _timed_predict(
        predictor, graph, iterations, dict_state=False, monkeypatch=monkeypatch
    )
    dict_seconds, dict_report = _timed_predict(
        predictor, graph, iterations, dict_state=True, monkeypatch=monkeypatch
    )
    assert columnar_report is not None and dict_report is not None

    # Parity guard: a faster path that changed the answer would be worthless.
    assert columnar_report.predictions == dict_report.predictions
    assert columnar_report.supersteps == dict_report.supersteps
    assert columnar_report.extra["state_columnar"] == 1.0
    assert dict_report.extra["state_columnar"] == 0.0

    speedup = dict_seconds / columnar_seconds if columnar_seconds else float("inf")

    payload = {
        "benchmark": "state_plane",
        "backend": "gas",
        "workers": WORKERS,
        "graph": {
            "generator": "powerlaw_cluster",
            "num_vertices": graph.num_vertices,
            "num_edges": graph.num_edges,
            "seed": BENCH_SEED,
        },
        "config": config.describe(),
        "iterations": iterations,
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "dict_wall_clock_seconds": dict_seconds,
        "columnar_wall_clock_seconds": columnar_seconds,
        "speedup_columnar_vs_dict": speedup,
        "columnar_routing_seconds": columnar_report.extra.get("routing_seconds"),
        "columnar_state_plane_peak_bytes": columnar_report.extra.get(
            "state_plane_peak_bytes"
        ),
        "dict_exchanged_bytes": dict_report.network_bytes,
        "columnar_exchanged_bytes": columnar_report.network_bytes,
        "peak_rss_bytes": peak_rss_bytes(),
    }
    path = save_json("BENCH_state", payload)
    assert path.exists()

    save_result("BENCH_state", "\n".join([
        "Columnar state plane vs dict path (gas backend, "
        f"workers={WORKERS}, {graph.num_vertices} vertices / "
        f"{graph.num_edges} edges, best of {iterations})",
        f"  dict      {dict_seconds * 1000:8.1f} ms",
        f"  columnar  {columnar_seconds * 1000:8.1f} ms  (x{speedup:.2f})",
    ]))

    # Hard gates: the columnar path must never lose, and at acceptance scale
    # it must deliver the >= 2x end-to-end win the refactor promises.
    assert speedup >= 1.0, (
        f"columnar state plane is slower than the dict path "
        f"(x{speedup:.2f}); this is a regression"
    )
    if num_vertices >= ACCEPTANCE_VERTICES:
        assert speedup >= 2.0, (
            f"columnar state plane speedup x{speedup:.2f} is below the 2x "
            f"acceptance bar on the {num_vertices}-vertex graph"
        )
