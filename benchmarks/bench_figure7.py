"""Benchmark regenerating Figure 7 (Γmax / Γmin / Γrnd sampling policies)."""

from __future__ import annotations

from conftest import BENCH_SCALE, BENCH_SEED, run_once

from repro.eval.experiments.figure7 import run_figure7


def test_figure7(benchmark, save_result):
    """Recall of the three neighbor-selection policies across klocal values."""
    result = run_once(
        benchmark,
        run_figure7,
        dataset="livejournal",
        scale=BENCH_SCALE,
        seed=BENCH_SEED,
    )
    save_result("figure7", result.render())

    for score in ("counter", "linearSum", "PPR"):
        # Paper shape: Γmax beats Γmin clearly at the smallest klocal.
        assert result.recall(score, "max", 5) > result.recall(score, "min", 5)
        # Γmax is at least competitive with the random policy at small klocal.
        assert result.recall(score, "max", 5) >= result.recall(score, "rnd", 5) - 0.01
        # Paper shape: policies converge as klocal grows.
        spread_small = abs(result.recall(score, "max", 5) - result.recall(score, "min", 5))
        spread_large = abs(result.recall(score, "max", 80) - result.recall(score, "min", 80))
        assert spread_large <= spread_small + 0.02
