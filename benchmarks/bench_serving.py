"""Online serving benchmark: incremental rescoring and load/latency curves.

Two claims are measured on the acceptance-scale power-law graph:

1. **Incremental beats batch.** Applying a single absent edge to a warm
   :class:`~repro.serving.IncrementalIndex` (dirty-region rescoring) must be
   faster than rebuilding the index from scratch — the batch recompute a
   system without the delta overlay would have to run.  This is the hard
   gate; the recorded speedup is the headline number.

2. **Throughput/latency vs offered load.** One long-lived
   :class:`~repro.serving.PredictorService` is driven by the closed-loop
   load generator at several client counts; each level reports stable-window
   throughput and p50/p99 latency, memtier-style.

Environment knobs (all optional):

- ``SNAPLE_BENCH_SERVING_VERTICES`` (default ``10000``)
- ``SNAPLE_BENCH_SERVING_CLIENTS`` (default ``1,2,4``)
- ``SNAPLE_BENCH_SERVING_WINDOWS`` (default ``4``)
- ``SNAPLE_BENCH_SERVING_WINDOW_SECONDS`` (default ``1.0``)
- ``SNAPLE_BENCH_SERVING_UPDATES`` (default ``5``)
- ``SNAPLE_BENCH_SERVING_INGEST_FRACTION`` (default ``0.05``)
"""

from __future__ import annotations

import os
import platform
import statistics
import time

import numpy as np

from repro.serving import (
    IncrementalIndex,
    LoadConfig,
    LoadGenerator,
    PredictorService,
    ServingConfig,
)
from repro.snaple.config import SnapleConfig

from conftest import BENCH_SEED

BENCH_K_LOCAL = 10


def _absent_edges(graph, count: int, seed: int) -> list[tuple[int, int]]:
    """``count`` distinct edges not present in ``graph``."""
    rng = np.random.default_rng(seed)
    edges: list[tuple[int, int]] = []
    seen: set[tuple[int, int]] = set()
    while len(edges) < count:
        u = int(rng.integers(graph.num_vertices))
        v = int(rng.integers(graph.num_vertices))
        if u != v and (u, v) not in seen and not graph.has_edge(u, v):
            edges.append((u, v))
            seen.add((u, v))
    return edges


def test_bench_serving(save_json, save_result, bench_graph):
    num_vertices = int(os.environ.get("SNAPLE_BENCH_SERVING_VERTICES",
                                      "10000"))
    client_levels = [
        int(value) for value in
        os.environ.get("SNAPLE_BENCH_SERVING_CLIENTS", "1,2,4").split(",")
        if value
    ]
    windows = int(os.environ.get("SNAPLE_BENCH_SERVING_WINDOWS", "4"))
    window_seconds = float(
        os.environ.get("SNAPLE_BENCH_SERVING_WINDOW_SECONDS", "1.0")
    )
    updates = int(os.environ.get("SNAPLE_BENCH_SERVING_UPDATES", "5"))
    ingest_fraction = float(
        os.environ.get("SNAPLE_BENCH_SERVING_INGEST_FRACTION", "0.05")
    )

    graph = bench_graph(num_vertices, 3, 0.2, seed=BENCH_SEED)
    config = SnapleConfig.paper_default(seed=BENCH_SEED,
                                        k_local=BENCH_K_LOCAL)

    # --- Claim 1: single-edge dirty-region rescoring vs full batch rebuild.
    start = time.perf_counter()
    index = IncrementalIndex(graph, config)
    batch_seconds = time.perf_counter() - start

    update_seconds: list[float] = []
    rescored_counts: list[int] = []
    for edge in _absent_edges(graph, updates, BENCH_SEED + 1):
        start = time.perf_counter()
        applied = index.apply_edges([edge])
        update_seconds.append(time.perf_counter() - start)
        rescored_counts.append(applied.num_rescored)
    median_update = statistics.median(update_seconds)
    speedup = batch_seconds / median_update

    # Hard gate: a single-edge update must beat rebuilding the whole index.
    assert median_update < batch_seconds, (
        f"incremental update ({median_update:.3f}s) did not beat the batch "
        f"rebuild ({batch_seconds:.3f}s)"
    )

    # --- Claim 2: one service, several offered-load levels.
    levels = []
    serving_config = ServingConfig(workers=2, queue_bound=256,
                                   compact_every=4096)
    with PredictorService(graph, config, serving=serving_config) as service:
        for clients in client_levels:
            load = LoadGenerator(service, LoadConfig(
                clients=clients,
                windows=windows,
                window_seconds=window_seconds,
                warmup_windows=1 if windows > 1 else 0,
                ingest_fraction=ingest_fraction,
                seed=BENCH_SEED + clients,
            )).run()
            levels.append(load.to_dict())
        stats = service.stats()

    payload = {
        "experiment": "serving",
        "generator": "powerlaw_cluster",
        "num_vertices": graph.num_vertices,
        "num_edges": graph.num_edges,
        "k_local": BENCH_K_LOCAL,
        "seed": BENCH_SEED,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "batch_build_seconds": batch_seconds,
        "incremental_update_seconds": update_seconds,
        "incremental_update_median_seconds": median_update,
        "incremental_rescored_vertices": rescored_counts,
        "incremental_speedup_vs_batch": speedup,
        "load_levels": levels,
        "service_stats": {
            "requests_served": stats.requests_served,
            "edges_ingested": stats.edges_ingested,
            "dirty_vertices_rescored": stats.dirty_vertices_rescored,
            "cache_hits": stats.cache_hits,
            "cache_misses": stats.cache_misses,
            "pair_cache_hits": stats.pair_cache_hits,
            "pair_cache_misses": stats.pair_cache_misses,
            "compactions": stats.compactions,
        },
    }
    save_json("BENCH_serving", payload)

    lines = [
        f"Online serving ({num_vertices:,} vertices, "
        f"{graph.num_edges:,} edges, k_local={BENCH_K_LOCAL})",
        "",
        f"batch index build        {batch_seconds:8.3f} s",
        f"single-edge update (med) {median_update:8.4f} s   "
        f"({speedup:,.0f}x faster, "
        f"median {int(statistics.median(rescored_counts))} "
        f"vertices rescored)",
        "",
        f"{'clients':>8} {'ops/s':>10} {'p50 ms':>9} {'p99 ms':>9}",
    ]
    for level in levels:
        lines.append(
            f"{level['offered_clients']:>8} "
            f"{level['stable_throughput_ops']:>10.0f} "
            f"{level['stable_p50_ms']:>9.3f} "
            f"{level['stable_p99_ms']:>9.3f}"
        )
    save_result("BENCH_serving", "\n".join(lines))
