"""Online serving benchmark: incremental rescoring and load/latency curves.

Three claims are measured on the acceptance-scale power-law graph:

1. **Incremental beats batch.** Applying a single absent edge to a warm
   :class:`~repro.serving.IncrementalIndex` (dirty-region rescoring) must be
   faster than rebuilding the index from scratch — the batch recompute a
   system without the delta overlay would have to run.  This is the hard
   gate; the recorded speedup is the headline number.

2. **Throughput/latency vs offered load.** One long-lived
   :class:`~repro.serving.PredictorService` is driven by the closed-loop
   load generator at several client counts; each level reports stable-window
   throughput, p50/p99 latency, and the operational-law bottleneck analysis
   derived from the per-stage queue/service-time samples, memtier-style.

3. **Sharding breaks the GIL.** The same load is replayed against a
   :class:`~repro.serving.ShardedPredictorService` with
   ``SNAPLE_BENCH_SERVING_SHARDS`` shard processes.  When the container
   actually grants enough cores (``usable_cores >= shards``), the sharded
   plane must reach at least ``2x`` the threaded service's stable
   throughput at the highest offered load; on core-limited boxes the rows
   are annotated ``cores_limited`` and the gate is skipped — same policy as
   ``bench_parallel_scaling.py``.

Environment knobs (all optional):

- ``SNAPLE_BENCH_SERVING_VERTICES`` (default ``10000``)
- ``SNAPLE_BENCH_SERVING_CLIENTS`` (default ``1,2,4``)
- ``SNAPLE_BENCH_SERVING_WINDOWS`` (default ``4``)
- ``SNAPLE_BENCH_SERVING_WINDOW_SECONDS`` (default ``1.0``)
- ``SNAPLE_BENCH_SERVING_UPDATES`` (default ``5``)
- ``SNAPLE_BENCH_SERVING_INGEST_FRACTION`` (default ``0.05``)
- ``SNAPLE_BENCH_SERVING_SHARDS`` (default ``4``; ``0`` skips the sharded
  levels entirely)
"""

from __future__ import annotations

import os
import platform
import statistics
import time

import numpy as np

from repro.serving import (
    IncrementalIndex,
    LoadConfig,
    LoadGenerator,
    PredictorService,
    ServingConfig,
    ShardedPredictorService,
)
from repro.snaple.config import SnapleConfig

from conftest import BENCH_SEED

BENCH_K_LOCAL = 10

SHARDED_SPEEDUP_FLOOR = 2.0


def usable_cores() -> int:
    """CPUs this process may actually run on (affinity-aware).

    ``os.cpu_count()`` reports the machine; a container pinned to one core
    still sees every socket there.  ``sched_getaffinity`` reflects the
    pinning, so the speedup gate keys off the honest number.
    """
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def _absent_edges(graph, count: int, seed: int) -> list[tuple[int, int]]:
    """``count`` distinct edges not present in ``graph``."""
    rng = np.random.default_rng(seed)
    edges: list[tuple[int, int]] = []
    seen: set[tuple[int, int]] = set()
    while len(edges) < count:
        u = int(rng.integers(graph.num_vertices))
        v = int(rng.integers(graph.num_vertices))
        if u != v and (u, v) not in seen and not graph.has_edge(u, v):
            edges.append((u, v))
            seen.add((u, v))
    return edges


def _run_levels(service, client_levels, *, windows, window_seconds,
                ingest_fraction, plane, parallelism, cores):
    """One load level per client count; rows annotated like the scaling bench.

    ``parallelism`` is the number of genuinely concurrent executors the
    plane can use (worker threads for the threaded service, shard processes
    for the sharded one); a row is ``cores_limited`` when that exceeds the
    cores the container actually grants.
    """
    levels = []
    for clients in client_levels:
        load = LoadGenerator(service, LoadConfig(
            clients=clients,
            windows=windows,
            window_seconds=window_seconds,
            warmup_windows=1 if windows > 1 else 0,
            ingest_fraction=ingest_fraction,
            seed=BENCH_SEED + clients,
        )).run()
        row = load.to_dict()
        # The operational table already distills the stage samples; keep
        # only the per-stage totals in the artifact, not the raw sample
        # arrays (megabytes per run).
        if row.get("stages"):
            row["stages"] = {
                name: {key: value for key, value in snap.items()
                       if not key.endswith("_samples")}
                for name, snap in row["stages"].items()
            }
        row["plane"] = plane
        row["parallelism"] = parallelism
        row["usable_cores"] = cores
        row["cores_limited"] = parallelism > cores
        levels.append(row)
    return levels


def test_bench_serving(save_json, save_result, bench_graph):
    num_vertices = int(os.environ.get("SNAPLE_BENCH_SERVING_VERTICES",
                                      "10000"))
    client_levels = [
        int(value) for value in
        os.environ.get("SNAPLE_BENCH_SERVING_CLIENTS", "1,2,4").split(",")
        if value
    ]
    windows = int(os.environ.get("SNAPLE_BENCH_SERVING_WINDOWS", "4"))
    window_seconds = float(
        os.environ.get("SNAPLE_BENCH_SERVING_WINDOW_SECONDS", "1.0")
    )
    updates = int(os.environ.get("SNAPLE_BENCH_SERVING_UPDATES", "5"))
    ingest_fraction = float(
        os.environ.get("SNAPLE_BENCH_SERVING_INGEST_FRACTION", "0.05")
    )
    shards = int(os.environ.get("SNAPLE_BENCH_SERVING_SHARDS", "4"))
    cores = usable_cores()

    graph = bench_graph(num_vertices, 3, 0.2, seed=BENCH_SEED)
    config = SnapleConfig.paper_default(seed=BENCH_SEED,
                                        k_local=BENCH_K_LOCAL)

    # --- Claim 1: single-edge dirty-region rescoring vs full batch rebuild.
    start = time.perf_counter()
    index = IncrementalIndex(graph, config)
    batch_seconds = time.perf_counter() - start

    update_seconds: list[float] = []
    rescored_counts: list[int] = []
    for edge in _absent_edges(graph, updates, BENCH_SEED + 1):
        start = time.perf_counter()
        applied = index.apply_edges([edge])
        update_seconds.append(time.perf_counter() - start)
        rescored_counts.append(applied.num_rescored)
    median_update = statistics.median(update_seconds)
    speedup = batch_seconds / median_update

    # Hard gate: a single-edge update must beat rebuilding the whole index.
    assert median_update < batch_seconds, (
        f"incremental update ({median_update:.3f}s) did not beat the batch "
        f"rebuild ({batch_seconds:.3f}s)"
    )

    # --- Claim 2: one threaded service, several offered-load levels.
    serving_config = ServingConfig(workers=2, queue_bound=256,
                                   compact_every=4096)
    with PredictorService(graph, config, serving=serving_config) as service:
        threaded_levels = _run_levels(
            service, client_levels,
            windows=windows, window_seconds=window_seconds,
            ingest_fraction=ingest_fraction,
            plane="threaded", parallelism=serving_config.workers,
            cores=cores,
        )
        stats = service.stats()

    # --- Claim 3: the sharded multi-process plane under the same load.
    sharded_levels = []
    sharded_stats = None
    if shards > 0:
        with ShardedPredictorService(graph, config, shards=shards,
                                     serving=serving_config) as sharded:
            sharded_levels = _run_levels(
                sharded, client_levels,
                windows=windows, window_seconds=window_seconds,
                ingest_fraction=ingest_fraction,
                plane="sharded", parallelism=shards,
                cores=cores,
            )
            raw = sharded.stats()
            sharded_stats = {
                "requests_served": raw.requests_served,
                "edges_ingested": raw.edges_ingested,
                "edges_removed": raw.edges_removed,
                "updates_applied": raw.updates_applied,
                "batches_dispatched": raw.batches_dispatched,
                "mean_batch_size": raw.mean_batch_size,
                "compactions": raw.compactions,
                "shards": raw.shards,
            }

    # Speedup of the sharded plane over the threaded one at the highest
    # offered load — only a hard gate when the container grants the cores.
    sharded_speedup = None
    cores_limited = shards > cores
    if sharded_levels:
        threaded_top = threaded_levels[-1]["stable_throughput_ops"]
        sharded_top = sharded_levels[-1]["stable_throughput_ops"]
        if threaded_top > 0:
            sharded_speedup = sharded_top / threaded_top
        if shards >= 4 and not cores_limited:
            assert sharded_speedup is not None and \
                sharded_speedup >= SHARDED_SPEEDUP_FLOOR, (
                    f"sharded plane ({shards} shards, {cores} cores) reached "
                    f"only {sharded_speedup:.2f}x the threaded throughput; "
                    f"gate is {SHARDED_SPEEDUP_FLOOR}x"
                )

    # Every load level must carry the operational-law analysis; the sharded
    # rows additionally expose the dispatch/shard_queue/rescore/reply stages.
    for row in threaded_levels + sharded_levels:
        assert row["operational"] is not None
        assert row["operational"]["bottleneck"] in row["operational"]["stages"]
    for row in sharded_levels:
        for stage in ("dispatch", "shard_queue", "rescore", "reply"):
            assert stage in row["stages"], f"missing sharded stage {stage}"

    payload = {
        "experiment": "serving",
        "generator": "powerlaw_cluster",
        "num_vertices": graph.num_vertices,
        "num_edges": graph.num_edges,
        "k_local": BENCH_K_LOCAL,
        "seed": BENCH_SEED,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "usable_cores": cores,
        "batch_build_seconds": batch_seconds,
        "incremental_update_seconds": update_seconds,
        "incremental_update_median_seconds": median_update,
        "incremental_rescored_vertices": rescored_counts,
        "incremental_speedup_vs_batch": speedup,
        "load_levels": threaded_levels,
        "sharded_load_levels": sharded_levels,
        "sharded": {
            "shards": shards,
            "usable_cores": cores,
            "cores_limited": cores_limited,
            "speedup_vs_threaded": sharded_speedup,
            "speedup_floor": SHARDED_SPEEDUP_FLOOR,
            "gate_enforced": bool(sharded_levels) and shards >= 4
            and not cores_limited,
        },
        "service_stats": {
            "requests_served": stats.requests_served,
            "edges_ingested": stats.edges_ingested,
            "dirty_vertices_rescored": stats.dirty_vertices_rescored,
            "cache_hits": stats.cache_hits,
            "cache_misses": stats.cache_misses,
            "pair_cache_hits": stats.pair_cache_hits,
            "pair_cache_misses": stats.pair_cache_misses,
            "compactions": stats.compactions,
        },
        "sharded_service_stats": sharded_stats,
    }
    save_json("BENCH_serving", payload)

    lines = [
        f"Online serving ({num_vertices:,} vertices, "
        f"{graph.num_edges:,} edges, k_local={BENCH_K_LOCAL}, "
        f"{cores} usable cores)",
        "",
        f"batch index build        {batch_seconds:8.3f} s",
        f"single-edge update (med) {median_update:8.4f} s   "
        f"({speedup:,.0f}x faster, "
        f"median {int(statistics.median(rescored_counts))} "
        f"vertices rescored)",
        "",
        f"{'plane':>10} {'clients':>8} {'ops/s':>10} {'p50 ms':>9} "
        f"{'p99 ms':>9}  bottleneck",
    ]
    for level in threaded_levels + sharded_levels:
        note = " [cores-limited]" if level["cores_limited"] else ""
        lines.append(
            f"{level['plane']:>10} "
            f"{level['offered_clients']:>8} "
            f"{level['stable_throughput_ops']:>10.0f} "
            f"{level['stable_p50_ms']:>9.3f} "
            f"{level['stable_p99_ms']:>9.3f}  "
            f"{level['operational']['bottleneck']}"
            f" (U={level['operational']['bottleneck_utilization']:.2f})"
            f"{note}"
        )
    if sharded_speedup is not None:
        gate = ("gate enforced" if shards >= 4 and not cores_limited
                else "gate skipped: cores-limited" if cores_limited
                else "gate skipped: <4 shards")
        lines.append("")
        lines.append(
            f"sharded vs threaded at {client_levels[-1]} clients: "
            f"{sharded_speedup:.2f}x ({gate})"
        )
    save_result("BENCH_serving", "\n".join(lines))
