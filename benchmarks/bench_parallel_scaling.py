"""Benchmark: serial vs shared-nothing parallel wall clock, recorded to JSON.

Runs the same SNAPLE configuration on the ``gas`` backend serially and with
1, 2 and 4 worker processes, verifies the runs are prediction-identical (a
benchmark that silently changed the answer would be worthless), and writes
the wall-clock trajectory to ``results/BENCH_parallel.json`` so the repo has
a recorded perf baseline to diff future sessions against.

Caveat recorded in the payload: on a small graph (and on single-core CI
runners) process startup and inter-partition state shipping dominate, so
parallel runs are routinely *slower* than serial — the point of the record
is the trajectory and the overhead split (compute vs sync), not a speedup
claim.  Environment knobs for CI:

* ``SNAPLE_BENCH_ITERATIONS`` — timing iterations per configuration
  (default 3; CI smoke uses 1);
* ``SNAPLE_BENCH_VERTICES`` — graph size (default 1000).
"""

from __future__ import annotations

import os
import platform
import time

from repro.snaple.config import SnapleConfig
from repro.snaple.predictor import SnapleLinkPredictor

from conftest import BENCH_SEED

WORKER_COUNTS = (1, 2, 4)


def _timed_predict(predictor, graph, iterations: int, **options):
    """Best-of-``iterations`` wall clock plus the last run's report."""
    best = float("inf")
    report = None
    for _ in range(iterations):
        start = time.perf_counter()
        report = predictor.predict(graph, backend="gas", **options)
        best = min(best, time.perf_counter() - start)
    return best, report


def test_bench_parallel_scaling(save_json, save_result, monkeypatch,
                                bench_graph):
    # Force the scalar per-partition steps: workers=N would otherwise run
    # the vectorized kernel (repro.snaple.kernel) while the serial gas
    # engine stays scalar, and speedup_vs_serial would conflate kernel
    # speedup with parallelization.  The kernel has its own benchmark
    # (bench_scoring_kernel.py); this one isolates the scaling trajectory.
    monkeypatch.setenv("SNAPLE_PARALLEL_SCALAR", "1")
    iterations = int(os.environ.get("SNAPLE_BENCH_ITERATIONS", "3"))
    num_vertices = int(os.environ.get("SNAPLE_BENCH_VERTICES", "1000"))
    graph = bench_graph(num_vertices, 3, 0.2, seed=BENCH_SEED)
    config = SnapleConfig.paper_default(seed=BENCH_SEED, k_local=10)
    predictor = SnapleLinkPredictor(config)

    serial_seconds, serial_report = _timed_predict(predictor, graph, iterations)
    assert serial_report is not None

    baseline_report = None
    runs = []
    for workers in WORKER_COUNTS:
        seconds, report = _timed_predict(
            predictor, graph, iterations, workers=workers
        )
        # Parity guard: every worker count measures the same computation.
        # The baseline is the workers=1 run, not the serial one — serial
        # draws truncation randomness from a sequential stream, so the two
        # only coincide when no vertex exceeds the truncation threshold.
        if baseline_report is None:
            baseline_report = report
        assert report.predictions == baseline_report.predictions
        assert report.supersteps == baseline_report.supersteps
        runs.append({
            "workers": workers,
            "wall_clock_seconds": seconds,
            "per_partition_seconds": report.per_partition_seconds,
            "sync_overhead_seconds": report.sync_overhead_seconds,
            "exchanged_bytes": report.network_bytes,
            "speedup_vs_serial": serial_seconds / seconds if seconds else None,
        })

    payload = {
        "benchmark": "parallel_scaling",
        "backend": "gas",
        "graph": {
            "generator": "powerlaw_cluster",
            "num_vertices": graph.num_vertices,
            "num_edges": graph.num_edges,
            "seed": BENCH_SEED,
        },
        "config": config.describe(),
        "iterations": iterations,
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "serial_wall_clock_seconds": serial_seconds,
        "parallel_runs": runs,
        "caveat": (
            "small graphs and few cores make process startup and boundary "
            "shipping dominate; compare trajectories, not absolute speedup"
        ),
    }
    path = save_json("BENCH_parallel", payload)
    assert path.exists()

    lines = [
        "Parallel scaling (gas backend, "
        f"{graph.num_vertices} vertices / {graph.num_edges} edges, "
        f"best of {iterations})",
        f"  serial      {serial_seconds * 1000:8.1f} ms",
    ]
    for run in runs:
        lines.append(
            f"  workers={run['workers']}   {run['wall_clock_seconds'] * 1000:8.1f} ms"
            f"  (speedup x{run['speedup_vs_serial']:.2f}, "
            f"sync {run['sync_overhead_seconds'] * 1000:.1f} ms)"
        )
    save_result("BENCH_parallel", "\n".join(lines))
