"""Benchmark: serial vs shared-nothing parallel wall clock, recorded to JSON.

Runs the same SNAPLE configuration on the ``gas`` backend serially and with
1, 2 and 4 worker processes, verifies the runs are prediction-identical (a
benchmark that silently changed the answer would be worthless), and writes
the wall-clock trajectory to ``results/BENCH_parallel.json`` so the repo has
a recorded perf baseline to diff future sessions against.

Since the shared-memory state plane landed, workers exchange segment
descriptors instead of pickled state slices; the payload records the actual
transport bytes for both paths so the zero-copy saving is visible in the
JSON.  The speedup gate (workers=4 beating serial on the 10k-vertex graph)
only applies when the machine actually has that many usable cores — every
row is annotated with the affinity-aware core count, and on core-limited
runners (CI containers pinned to one CPU) the gate records the measurement
instead of failing it.

Environment knobs for CI:

* ``SNAPLE_BENCH_ITERATIONS`` — timing iterations per configuration
  (default 3; CI smoke uses 1);
* ``SNAPLE_BENCH_VERTICES`` — main graph size (default 10000);
* ``SNAPLE_BENCH_SCALE_VERTICES`` — the large scaling row's graph size
  (default 100000; ``0`` skips the row, which CI smoke does).
"""

from __future__ import annotations

import os
import platform
import time

from repro.snaple.config import SnapleConfig
from repro.snaple.predictor import SnapleLinkPredictor

from conftest import BENCH_SEED, peak_rss_bytes

WORKER_COUNTS = (1, 2, 4)


def usable_cores() -> int:
    """CPUs this process may actually run on (affinity-aware).

    ``os.cpu_count()`` reports the machine; a container pinned to one core
    still sees every socket there.  ``sched_getaffinity`` reflects the
    pinning, so the speedup gate keys off the honest number.
    """
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def _timed_predict(predictor, graph, iterations: int, **options):
    """Best-of-``iterations`` wall clock plus the last run's report."""
    best = float("inf")
    report = None
    for _ in range(iterations):
        start = time.perf_counter()
        # enforce_memory=False: this benchmark measures wall clock; the
        # simulated-cluster memory cap (a paper-fidelity feature) would
        # otherwise reject the 100k-vertex scaling row.
        report = predictor.predict(graph, backend="gas",
                                   enforce_memory=False, **options)
        best = min(best, time.perf_counter() - start)
    return best, report


def test_bench_parallel_scaling(save_json, save_result, monkeypatch,
                                bench_graph):
    iterations = int(os.environ.get("SNAPLE_BENCH_ITERATIONS", "3"))
    num_vertices = int(os.environ.get("SNAPLE_BENCH_VERTICES", "10000"))
    scale_vertices = int(
        os.environ.get("SNAPLE_BENCH_SCALE_VERTICES", "100000")
    )
    cores = usable_cores()
    graph = bench_graph(num_vertices, 3, 0.2, seed=BENCH_SEED)
    config = SnapleConfig.paper_default(seed=BENCH_SEED, k_local=10)
    predictor = SnapleLinkPredictor(config)

    serial_seconds, serial_report = _timed_predict(predictor, graph,
                                                   iterations)
    assert serial_report is not None

    baseline_report = None
    runs = []
    for workers in WORKER_COUNTS:
        seconds, report = _timed_predict(
            predictor, graph, iterations, workers=workers
        )
        # Parity guard: every worker count measures the same computation.
        # The baseline is the workers=1 run, not the serial one — serial
        # draws truncation randomness from a sequential stream, so the two
        # only coincide when no vertex exceeds the truncation threshold.
        if baseline_report is None:
            baseline_report = report
        assert report.predictions == baseline_report.predictions
        assert report.supersteps == baseline_report.supersteps
        runs.append({
            "workers": workers,
            "usable_cores": cores,
            "cores_limited": workers > cores,
            "wall_clock_seconds": seconds,
            "per_partition_seconds": report.per_partition_seconds,
            "sync_overhead_seconds": report.sync_overhead_seconds,
            "exchanged_bytes": report.network_bytes,
            "shm_enabled": bool(report.extra.get("shm_enabled", 0.0)),
            "transport_bytes": report.extra.get("transport_bytes"),
            "speedup_vs_serial": serial_seconds / seconds if seconds else None,
        })

    # Zero-copy economy check: the same workers=4 run over the pickled
    # transport must ship strictly more bytes than the descriptor path.
    # (This holds regardless of core count, unlike the wall-clock gate.)
    shm_run = runs[-1]
    monkeypatch.setenv("SNAPLE_NO_SHM", "1")
    pickled_seconds, pickled_report = _timed_predict(
        predictor, graph, max(1, iterations - 2), workers=WORKER_COUNTS[-1]
    )
    monkeypatch.delenv("SNAPLE_NO_SHM")
    assert pickled_report.predictions == baseline_report.predictions
    pickled = {
        "workers": WORKER_COUNTS[-1],
        "wall_clock_seconds": pickled_seconds,
        "transport_bytes": pickled_report.extra.get("transport_bytes"),
    }
    if shm_run["shm_enabled"]:
        assert shm_run["transport_bytes"] < pickled["transport_bytes"]

    # The wall-clock gate only means something when the cores exist: a
    # runner pinned to one CPU time-slices all four workers onto it and
    # measures scheduling, not scaling.
    gated = [run for run in runs
             if run["workers"] > 1 and not run["cores_limited"]]
    for run in gated:
        assert run["speedup_vs_serial"] > 1.0, (
            f"workers={run['workers']} did not beat serial "
            f"({run['speedup_vs_serial']:.2f}x) despite {cores} usable cores"
        )

    # One large scaling row: same trajectory on a 10x graph, one iteration
    # (its wall clock dwarfs startup noise).
    scaling_row = None
    if scale_vertices > 0:
        big_graph = bench_graph(scale_vertices, 3, 0.2, seed=BENCH_SEED)
        big_serial, _ = _timed_predict(predictor, big_graph, 1)
        big_seconds, big_report = _timed_predict(
            predictor, big_graph, 1, workers=WORKER_COUNTS[-1]
        )
        scaling_row = {
            "num_vertices": big_graph.num_vertices,
            "num_edges": big_graph.num_edges,
            "workers": WORKER_COUNTS[-1],
            "usable_cores": cores,
            "cores_limited": WORKER_COUNTS[-1] > cores,
            "serial_wall_clock_seconds": big_serial,
            "wall_clock_seconds": big_seconds,
            "shm_enabled": bool(big_report.extra.get("shm_enabled", 0.0)),
            "transport_bytes": big_report.extra.get("transport_bytes"),
            "speedup_vs_serial": (big_serial / big_seconds
                                  if big_seconds else None),
        }
        if WORKER_COUNTS[-1] <= cores:
            assert scaling_row["speedup_vs_serial"] > 1.0

    payload = {
        "benchmark": "parallel_scaling",
        "backend": "gas",
        "graph": {
            "generator": "powerlaw_cluster",
            "num_vertices": graph.num_vertices,
            "num_edges": graph.num_edges,
            "seed": BENCH_SEED,
        },
        "config": config.describe(),
        "iterations": iterations,
        "cpu_count": os.cpu_count(),
        "usable_cores": cores,
        "python": platform.python_version(),
        "serial_wall_clock_seconds": serial_seconds,
        "parallel_runs": runs,
        "pickled_transport_run": pickled,
        "scaling_row": scaling_row,
        "peak_rss_bytes": peak_rss_bytes(),
        "caveat": (
            "rows with cores_limited=true ran more workers than usable "
            "cores; their wall clock measures time-slicing, not scaling — "
            "compare transport_bytes there, speedup only where cores exist"
        ),
    }
    path = save_json("BENCH_parallel", payload)
    assert path.exists()

    lines = [
        "Parallel scaling (gas backend, "
        f"{graph.num_vertices} vertices / {graph.num_edges} edges, "
        f"best of {iterations}, {cores} usable cores)",
        f"  serial      {serial_seconds * 1000:8.1f} ms",
    ]
    for run in runs:
        note = " [cores-limited]" if run["cores_limited"] else ""
        lines.append(
            f"  workers={run['workers']}   {run['wall_clock_seconds'] * 1000:8.1f} ms"
            f"  (speedup x{run['speedup_vs_serial']:.2f}, "
            f"sync {run['sync_overhead_seconds'] * 1000:.1f} ms, "
            f"transport {run['transport_bytes'] or 0:.0f} B){note}"
        )
    lines.append(
        f"  workers={pickled['workers']} (pickled transport) "
        f"{pickled['wall_clock_seconds'] * 1000:8.1f} ms, "
        f"transport {pickled['transport_bytes'] or 0:.0f} B"
    )
    if scaling_row:
        lines.append(
            f"  scaling row ({scaling_row['num_vertices']} vertices): "
            f"serial {scaling_row['serial_wall_clock_seconds'] * 1000:.1f} ms, "
            f"workers={scaling_row['workers']} "
            f"{scaling_row['wall_clock_seconds'] * 1000:.1f} ms"
            + (" [cores-limited]" if scaling_row["cores_limited"] else "")
        )
    save_result("BENCH_parallel", "\n".join(lines))
