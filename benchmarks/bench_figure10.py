"""Benchmark regenerating Figure 10 (recall vs removed edges per vertex)."""

from __future__ import annotations

from conftest import BENCH_SEED, run_once

from repro.eval.experiments.figure10 import run_figure10


def test_figure10(benchmark, save_result):
    """Recall as 1–5 outgoing edges are removed from every eligible vertex."""
    result = run_once(
        benchmark,
        run_figure10,
        scale=0.4,
        seed=BENCH_SEED,
    )
    save_result("figure10", result.render())

    for dataset in ("livejournal", "pokec"):
        for score in ("linearSum", "counter", "PPR"):
            # Paper shape: removing more edges lowers recall.
            assert result.recall(dataset, score, 5) < result.recall(dataset, score, 1)
            values = [result.recall(dataset, score, removed) for removed in (1, 2, 3, 4, 5)]
            assert all(b <= a + 0.02 for a, b in zip(values, values[1:]))
