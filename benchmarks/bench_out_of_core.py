"""Out-of-core execution: peak RSS stays bounded while the graph grows.

The claim under test is the tentpole of the memmap tier
(:mod:`repro.runtime.ooc` + :mod:`repro.graph.storage`): because the CSR
arrays live in file-backed ``MAP_SHARED`` pages — reclaimable page cache,
not anonymous memory — building and loading a graph 1000x larger only
costs a bounded amount of resident memory, and predictions computed over
the memmap tier are bit-identical to the in-RAM ones.

Two legs:

* **RSS scaling** — generate 10k / 100k / 10M-edge power-law graphs via
  ``python -m repro.graph.storage generate`` in *fresh subprocesses*
  (``ru_maxrss`` is a lifetime high-water mark, so each scale must be
  measured in isolation) and gate that peak RSS grows by less than 2x
  while the edge count grows 100x (100k → 10M).
* **parity** — one small graph scored on the in-RAM and memmap tiers must
  produce identical predictions and scores.

Writes ``results/BENCH_ooc.json``.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
from pathlib import Path

import pytest

from conftest import BENCH_SEED, peak_rss_bytes

pytestmark = pytest.mark.slow

#: Edge scales for the RSS-bounding gate: 10k → 100k → 10M (1000x overall,
#: 100x across the gated pair).
EDGE_SCALES = (10_000, 100_000, 10_000_000)

#: Vertices per scale — enough for a non-degenerate degree distribution
#: while keeping the O(V) generator tables small at every scale.
VERTICES_PER_SCALE = {10_000: 2_000, 100_000: 20_000, 10_000_000: 500_000}

#: Zipf exponent for the endpoint distribution.  Exponents >= 1 put a
#: *constant fraction* of all endpoints on the top vertex, so the max row
#: — and with it the builder's documented O(chunk + max degree) sort
#: scratch — grows linearly with |E|; that measures row skew, not the
#: storage tier.  0.8 keeps a heavy tail with sublinearly growing rows.
EXPONENT = 0.8


def _generate_in_subprocess(path: Path, vertices: int, edges: int) -> dict:
    """Build one container in a fresh process and return its stats JSON."""
    result = subprocess.run(
        [sys.executable, "-m", "repro.graph.storage", "generate",
         str(path), "--vertices", str(vertices), "--edges", str(edges),
         "--seed", str(BENCH_SEED), "--exponent", str(EXPONENT)],
        capture_output=True, text=True, check=True,
        env={**os.environ, "PYTHONPATH": str(Path(__file__).parent.parent / "src")},
    )
    return json.loads(result.stdout)


def test_bench_out_of_core(save_json, save_result, tmp_path, monkeypatch,
                           bench_graph):
    rows = []
    for edges in EDGE_SCALES:
        vertices = VERTICES_PER_SCALE[edges]
        stats = _generate_in_subprocess(tmp_path / f"g{edges}", vertices,
                                        edges)
        assert stats["num_edges"] == edges
        assert stats["loaded_num_edges"] == edges
        rows.append({
            "num_vertices": vertices,
            "num_edges": edges,
            "container_bytes": stats["container_bytes"],
            "build_seconds": stats["build_seconds"],
            "load_seconds": stats["load_seconds"],
            "peak_rss_bytes": stats["peak_rss_bytes"],
        })

    # The gate: 100x more edges, less than 2x more resident memory.  The
    # container itself grows linearly — the page cache absorbs it.
    rss_small = rows[1]["peak_rss_bytes"]
    rss_large = rows[2]["peak_rss_bytes"]
    rss_ratio = rss_large / rss_small
    edge_ratio = rows[2]["num_edges"] / rows[1]["num_edges"]
    assert edge_ratio == 100.0
    assert rss_ratio < 2.0, (
        f"peak RSS grew {rss_ratio:.2f}x while edges grew {edge_ratio:.0f}x "
        f"— the out-of-core tier is not bounding memory"
    )
    # O(1) load: mapping the 10M-edge container must not read it.
    assert rows[2]["load_seconds"] < rows[2]["build_seconds"]

    # Parity leg: the memmap tier is an execution detail, not a model
    # change — predictions and scores must be bit-identical.
    from repro.snaple.config import SnapleConfig
    from repro.snaple.predictor import SnapleLinkPredictor

    graph = bench_graph(600)
    config = SnapleConfig.paper_default(seed=BENCH_SEED, k_local=10)
    monkeypatch.delenv("SNAPLE_OOC", raising=False)
    in_ram = SnapleLinkPredictor(config).predict(graph, backend="gas",
                                                 workers=2)
    monkeypatch.setenv("SNAPLE_OOC", "1")
    with SnapleLinkPredictor(config) as predictor:
        memmap = predictor.predict(graph, backend="gas", workers=2)
    monkeypatch.delenv("SNAPLE_OOC")
    assert memmap.extra["ooc_enabled"] == 1.0
    assert memmap.predictions == in_ram.predictions
    assert dict(memmap.scores) == dict(in_ram.scores)

    payload = {
        "benchmark": "out_of_core",
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "seed": BENCH_SEED,
        "rows": rows,
        "rss_ratio_100x_edges": rss_ratio,
        "parity": {
            "num_vertices": graph.num_vertices,
            "num_edges": graph.num_edges,
            "identical_predictions": True,
        },
        "peak_rss_bytes": peak_rss_bytes(),
        "caveat": (
            "per-scale peak_rss_bytes rows are measured in fresh "
            "subprocesses; the top-level peak_rss_bytes is this harness "
            "process and is not comparable to the rows"
        ),
    }
    path = save_json("BENCH_ooc", payload)
    assert path.exists()

    lines = ["Out-of-core scaling (streamed power-law generator):"]
    for row in rows:
        lines.append(
            f"  {row['num_edges']:>11,} edges: container "
            f"{row['container_bytes'] / 2**20:8.1f} MiB, peak RSS "
            f"{row['peak_rss_bytes'] / 2**20:8.1f} MiB, build "
            f"{row['build_seconds']:6.2f} s, load {row['load_seconds']*1e3:6.1f} ms"
        )
    lines.append(
        f"  RSS ratio across 100x edge growth: {rss_ratio:.2f}x (gate: < 2x)"
    )
    lines.append("  memmap-tier predictions: bit-identical to in-RAM")
    save_result("BENCH_ooc", "\n".join(lines))
