"""Benchmark: checkpointing overhead and crash-recovery cost, recorded to JSON.

Runs the same SNAPLE configuration on the ``gas`` and ``bsp`` backends with
2 worker processes three ways — no checkpointing, checkpointing every
superstep, and a run that loses a worker mid-superstep and recovers from its
checkpoints — verifies all three are prediction-identical (a fault-tolerance
layer that changed the answer would be worse than useless), and writes the
overhead split (checkpoint seconds/bytes, recovery wall clock) to
``results/BENCH_checkpoint.json`` so future sessions can diff the cost of
durability.

Environment knobs for CI:

* ``SNAPLE_BENCH_ITERATIONS`` — timing iterations per configuration
  (default 3; CI smoke uses 1);
* ``SNAPLE_BENCH_VERTICES`` — graph size (default 1000).
"""

from __future__ import annotations

import os
import platform
import time

from repro.runtime.checkpoint import FaultSpec
from repro.snaple.config import SnapleConfig
from repro.snaple.predictor import SnapleLinkPredictor

from conftest import BENCH_SEED, peak_rss_bytes

WORKERS = 2


def _timed_predict(predictor, graph, iterations: int, backend: str, **options):
    """Best-of-``iterations`` wall clock plus the last run's report."""
    best = float("inf")
    report = None
    for _ in range(iterations):
        start = time.perf_counter()
        report = predictor.predict(graph, backend=backend, **options)
        best = min(best, time.perf_counter() - start)
    return best, report


def test_bench_checkpoint_overhead(save_json, save_result, tmp_path,
                                   bench_graph):
    iterations = int(os.environ.get("SNAPLE_BENCH_ITERATIONS", "3"))
    num_vertices = int(os.environ.get("SNAPLE_BENCH_VERTICES", "1000"))
    graph = bench_graph(num_vertices, 3, 0.2, seed=BENCH_SEED)
    config = SnapleConfig.paper_default(seed=BENCH_SEED, k_local=10)
    predictor = SnapleLinkPredictor(config)

    rows = []
    for backend in ("gas", "bsp"):
        plain_seconds, plain = _timed_predict(
            predictor, graph, iterations, backend=backend, workers=WORKERS
        )
        checkpoint_dir = tmp_path / f"ckpt-{backend}"
        checkpointed_seconds = float("inf")
        checkpointed = None
        for iteration in range(iterations):
            run_dir = checkpoint_dir / f"iter-{iteration}"
            start = time.perf_counter()
            checkpointed = predictor.predict(
                graph, backend=backend, workers=WORKERS,
                checkpoint_dir=run_dir,
            )
            checkpointed_seconds = min(checkpointed_seconds,
                                       time.perf_counter() - start)
        # Durability must never change the answer.
        assert checkpointed.predictions == plain.predictions
        assert checkpointed.extra["checkpoints_written"] > 0
        assert checkpointed.extra["checkpoint_bytes"] > 0

        # One crash mid-run: kill a worker at superstep 1, let the executor
        # respawn the pool and resume from the newest checkpoint.
        recovery_dir = checkpoint_dir / "recovery"
        token = checkpoint_dir / "fault-token"
        start = time.perf_counter()
        recovered = predictor.predict(
            graph, backend=backend, workers=WORKERS,
            checkpoint_dir=recovery_dir,
            fault=FaultSpec(superstep=1, partition=0, token_path=str(token)),
        )
        recovery_seconds = time.perf_counter() - start
        assert recovered.extra["worker_restarts"] == 1.0
        assert recovered.predictions == plain.predictions

        rows.append({
            "backend": backend,
            "plain_wall_clock_seconds": plain_seconds,
            "checkpointed_wall_clock_seconds": checkpointed_seconds,
            "checkpoint_seconds": checkpointed.extra["checkpoint_seconds"],
            "checkpoint_bytes": checkpointed.extra["checkpoint_bytes"],
            "checkpoints_written": checkpointed.extra["checkpoints_written"],
            "overhead_ratio": (checkpointed_seconds / plain_seconds
                               if plain_seconds else None),
            "crash_recovery_wall_clock_seconds": recovery_seconds,
            "recovery_vs_plain_ratio": (recovery_seconds / plain_seconds
                                        if plain_seconds else None),
        })

    payload = {
        "benchmark": "checkpoint_overhead",
        "workers": WORKERS,
        "graph": {
            "generator": "powerlaw_cluster",
            "num_vertices": graph.num_vertices,
            "num_edges": graph.num_edges,
            "seed": BENCH_SEED,
        },
        "config": config.describe(),
        "iterations": iterations,
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "rows": rows,
        "peak_rss_bytes": peak_rss_bytes(),
        "caveat": (
            "checkpoint cost is dominated by pickling the full state plane; "
            "on small graphs the fixed per-superstep cost overstates the "
            "relative overhead of production-sized runs"
        ),
    }
    path = save_json("BENCH_checkpoint", payload)
    assert path.exists()

    lines = [
        "Checkpoint overhead (2 workers, "
        f"{graph.num_vertices} vertices / {graph.num_edges} edges, "
        f"best of {iterations})",
    ]
    for row in rows:
        lines.append(
            f"  {row['backend']:4s} plain {row['plain_wall_clock_seconds'] * 1000:8.1f} ms"
            f" | checkpointed {row['checkpointed_wall_clock_seconds'] * 1000:8.1f} ms"
            f" (x{row['overhead_ratio']:.2f},"
            f" {row['checkpoint_bytes'] / 1024:.0f} KiB in"
            f" {int(row['checkpoints_written'])} snapshots)"
            f" | crash+recover {row['crash_recovery_wall_clock_seconds'] * 1000:8.1f} ms"
        )
    save_result("BENCH_checkpoint", "\n".join(lines))
