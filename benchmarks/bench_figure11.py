"""Benchmark regenerating Figure 11 (random-walk PPR baseline sweep)."""

from __future__ import annotations

from conftest import BENCH_SEED, run_once

from repro.eval.experiments.figure11 import run_figure11


def test_figure11(benchmark, save_result):
    """Recall/time of the Cassovary-style baseline for w and d sweeps."""
    result = run_once(
        benchmark,
        run_figure11,
        scale=0.3,
        seed=BENCH_SEED,
        walks=(10, 100, 300),
        depths=(3, 5, 10),
    )
    save_result("figure11", result.render())

    for dataset in ("livejournal", "twitter-rv"):
        # Paper shape: more walks improve recall but cost more time.
        few = result.runs[(dataset, 10, 3)]
        many = result.runs[(dataset, 300, 3)]
        assert many.recall >= few.recall
        assert many.time_seconds > few.time_seconds
        # Paper shape: increasing depth beyond 3 brings little extra recall.
        shallow = result.runs[(dataset, 100, 3)]
        deep = result.runs[(dataset, 100, 10)]
        assert deep.recall <= shallow.recall + 0.05
        assert deep.time_seconds > shallow.time_seconds
