"""Benchmark regenerating Figure 6 (degree CDFs and thrΓ sensitivity)."""

from __future__ import annotations

from conftest import BENCH_SCALE, BENCH_SEED, run_once

from repro.eval.experiments.figure6 import run_figure6


def test_figure6(benchmark, save_result):
    """Degree CDF coverage and relative recall improvement vs thrΓ."""
    result = run_once(
        benchmark,
        run_figure6,
        scale=BENCH_SCALE,
        seed=BENCH_SEED,
        k_local=80,
    )
    save_result("figure6", result.render())

    for dataset in ("orkut", "livejournal", "twitter-rv"):
        # Coverage is monotone in the threshold (CDF property).
        coverages = [result.coverage[(dataset, thr)] for thr in result.thresholds]
        assert coverages == sorted(coverages)
        # Paper shape: recall at the largest threshold is at least the recall
        # at the smallest one (truncating less never helps less than a lot).
        assert result.recall[(dataset, result.thresholds[-1])] >= (
            result.recall[(dataset, result.thresholds[0])] - 0.02
        )
        # Paper shape: once thrΓ covers ~80 % of vertices the improvement
        # flattens — the last two thresholds should be within a few percent.
        last = dict(result.improvement.series[dataset].points)
        assert abs(last[result.thresholds[-1]] - last[result.thresholds[-2]]) <= 15.0
