"""Benchmark regenerating Table 5 (BASELINE vs SNAPLE configurations)."""

from __future__ import annotations

import math

from conftest import BENCH_SCALE, BENCH_SEED, run_once

from repro.eval.experiments.table5 import run_table5


def test_table5(benchmark, save_result):
    """BASELINE vs SNAPLE: recall gains and speedups on three datasets."""
    result = run_once(
        benchmark,
        run_table5,
        scale=BENCH_SCALE,
        seed=BENCH_SEED,
        num_machines=4,
    )
    save_result("table5", result.render())

    for dataset in ("gowalla", "pokec", "livejournal"):
        baseline = result.baseline[dataset]
        full = result.snaple[(dataset, "linearSum", math.inf, math.inf)]
        sampled = result.snaple[(dataset, "linearSum", math.inf, 20)]
        # Paper shape: SNAPLE improves recall over BASELINE on every dataset
        # and is faster; klocal sampling gives the largest speedup.
        assert full.recall > baseline.recall
        assert full.time_seconds < baseline.time_seconds
        assert sampled.time_seconds < full.time_seconds
        assert sampled.recall > 0.8 * full.recall
