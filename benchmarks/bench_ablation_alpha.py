"""Benchmark regenerating the α-sweep ablation (linear combinator weight)."""

from __future__ import annotations

from conftest import BENCH_SCALE, BENCH_SEED, run_once

from repro.eval.experiments.ablation_alpha import run_ablation_alpha


def test_ablation_alpha(benchmark, save_result):
    """Recall of linearSum as a function of the linear combinator weight α."""
    result = run_once(
        benchmark,
        run_ablation_alpha,
        scale=BENCH_SCALE,
        seed=BENCH_SEED,
    )
    save_result("ablation_alpha", result.render())

    for dataset in ("livejournal", "pokec"):
        recalls = {
            alpha: result.recall(dataset, alpha)
            for alpha in (0.1, 0.25, 0.5, 0.75, 0.9, 1.0)
        }
        # Weighting only the first hop (α = 1) collapses the ranking among
        # candidates sharing an intermediate vertex, so it must be the worst
        # operating point on every dataset.
        assert recalls[1.0] < min(recalls[alpha] for alpha in (0.1, 0.25, 0.5, 0.9))
        # Every other α is a usable operating point (the paper picks 0.9; on
        # the synthetic analogs smaller α values are at least as good — see
        # EXPERIMENTS.md for the recorded deviation).
        assert all(recalls[alpha] > 0.05 for alpha in (0.1, 0.25, 0.5, 0.75, 0.9))
