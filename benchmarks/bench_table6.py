"""Benchmark regenerating Table 6 (SNAPLE vs the single-machine baseline)."""

from __future__ import annotations

from conftest import BENCH_SEED, run_once

from repro.eval.experiments.table6 import run_table6


def test_table6(benchmark, save_result):
    """SNAPLE vs random-walk PPR on one machine, plus the distributed run."""
    result = run_once(
        benchmark,
        run_table6,
        scale=0.4,
        seed=BENCH_SEED,
        k_local=20,
        walks=(10, 100, 300),
        depths=(3, 5),
        distributed_machines=32,
    )
    save_result("table6", result.render())

    for dataset in ("livejournal", "twitter-rv"):
        baseline = result.cassovary[dataset]
        snaple = result.snaple[dataset]
        # Paper shape: on a single machine SNAPLE is clearly faster than the
        # exhaustive random-walk sweep.  On livejournal it also matches the
        # baseline's recall; the twitter analog (RMAT, very low clustering)
        # favours walk-based exploration more than the real twitter-rv graph
        # does, so only a weaker recall bound is asserted there — the
        # deviation is recorded in EXPERIMENTS.md.
        recall_factor = 0.8 if dataset == "livejournal" else 0.4
        assert snaple.recall >= recall_factor * baseline.recall
        assert result.speedup(dataset) > 1.0

    # Paper shape: on the largest graph, the distributed SNAPLE deployment
    # reaches the walk baseline's operating point many times faster (the
    # paper's 30×-class headline is SNAPLE-on-a-cluster vs Cassovary).
    assert result.distributed_speedup("twitter-rv") > 2.0
    assert not result.distributed["twitter-rv"].failed
