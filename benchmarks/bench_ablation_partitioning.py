"""Benchmark regenerating the vertex-cut partitioning ablation."""

from __future__ import annotations

from conftest import BENCH_SCALE, BENCH_SEED, run_once

from repro.eval.experiments.ablation_partitioning import run_ablation_partitioning


def test_ablation_partitioning(benchmark, save_result):
    """Replication factor, traffic and simulated time per edge placement."""
    result = run_once(
        benchmark,
        run_ablation_partitioning,
        scale=BENCH_SCALE,
        seed=BENCH_SEED,
    )
    save_result("ablation_partitioning", result.render())

    random_row = result.row("livejournal", "random")
    greedy_row = result.row("livejournal", "greedy")
    hdrf_row = result.row("livejournal", "hdrf")
    # Replication-factor ordering drives the synchronization traffic and the
    # simulated time; the predictions themselves must not change.
    assert hdrf_row.replication_factor < greedy_row.replication_factor
    assert greedy_row.replication_factor < random_row.replication_factor
    assert hdrf_row.network_mebibytes < random_row.network_mebibytes
    assert hdrf_row.simulated_seconds < random_row.simulated_seconds
    assert hdrf_row.recall == greedy_row.recall == random_row.recall
